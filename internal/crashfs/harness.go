package crashfs

import (
	"bytes"
	"fmt"
	"io"

	"crfs/internal/codec"
	"crfs/internal/core"
	"crfs/internal/vfs"
)

// The crash-point harness: run a scripted workload through a real CRFS
// mount over a crashfs backend, then, for every crash point — each
// mutation boundary of the recorded log, plus torn cuts inside each
// write — replay the post-crash state, remount, and assert the
// durability contract:
//
//  1. Every byte a Sync or Close acknowledged before the cut reads back
//     byte-identical after remount.
//  2. Nothing overwritten after an acknowledgment is resurrected: a
//     readable byte must come from the acknowledged state or a later
//     write, never an earlier one.
//  3. Unsynced tails only ever shorten the file: the readable size sits
//     between the last acknowledged size and the largest size any
//     issued write produced, and unacknowledged extents read as issued
//     data or zeros — never garbage.
//  4. A torn container never fails the whole file: every crash point
//     remounts and reads without error, with salvage doing the work and
//     RecoveryStats reflecting it.
//  5. Checksums hold at every crash state: a power cut can only shorten
//     the backend log, never flip landed bytes, so no frame a verify
//     mount decodes — on the read path or under a full scrub — may fail
//     its v2 payload checksum. A torn v2 frame must fail structurally
//     (salvage truncates at the tear, counted as torn bytes), never
//     decode to phantom data behind a CRC the writer did not stamp.
//
// The record mount runs with IOThreads = 1 so the backend log is the
// flush order — the linear-history model crashfs replays. Concurrency
// inside one mutation is irrelevant to the model; cross-file ordering
// with many IO threads would only interleave logs without changing any
// single file's frame chain.

// StepKind discriminates workload steps.
type StepKind int

// Workload steps.
const (
	// StepWrite writes Len deterministic bytes at Off.
	StepWrite StepKind = iota
	// StepSync fsyncs the file: everything written so far becomes
	// acknowledged state the crash must preserve.
	StepSync
	// StepClose closes the file's handle (same acknowledgment as sync);
	// a later step may reopen it implicitly.
	StepClose
)

// Step is one scripted workload operation.
type Step struct {
	Kind StepKind
	File string
	Off  int64
	Len  int
}

// HarnessConfig configures one harness run.
type HarnessConfig struct {
	// Codec is the mount's chunk codec (nil = raw passthrough).
	Codec codec.Codec
	// ChunkSize is the mount's aggregation chunk size (small, so the
	// workload spans many chunks). Defaults to 64.
	ChunkSize int64
	// Repair sets RepairOnOpen on the verify mounts.
	Repair bool
	// Compaction enables online container compaction: the record mount
	// runs an aggressive policy (so the workload's overwrites trigger
	// rewrites whose temp-write + rename mutations land in the crash
	// log), and every crash point additionally compacts each file after
	// the first read and re-reads it — proving compaction of any
	// crash-state container never changes the readable bytes.
	Compaction bool
	// Torn adds intra-write cuts (first byte, mid-payload, last-byte-
	// short) to the enumerated boundaries, exercising torn frames.
	Torn bool
	// Stride subsamples crash points (every Stride-th point, plus the
	// first and last); <= 1 checks every point.
	Stride int
}

// HarnessResult summarizes a run.
type HarnessResult struct {
	Mutations  int      // recorded backend mutations
	Points     int      // crash points verified
	Violations []string // durability contract violations (nil = proven)
	// Recovery totals across all verify mounts.
	Salvaged, Repaired, FramesDropped, BytesTruncated int64
	// Compaction totals: rewrites by the record mount's policy and by
	// the per-point compact-and-reread check.
	RecordCompactions, PointCompactions int64
	// Integrity totals across all verify mounts (reads plus the rule-5
	// per-point scrub): v2 payloads whose checksum matched, payloads that
	// carried no checksum (v1 frames, zero-extent markers), and failures.
	// ChecksumFailed > 0 is always also a violation — crash states carry
	// no bit rot, only tears.
	ChecksumVerified, ChecksumSkipped, ChecksumFailed int64
}

// ack is one durability acknowledgment: after step Step returned, every
// mutation below LogLen is required state for file File.
type ack struct {
	file   string
	logLen int
	step   int
}

// payloadByte is the deterministic workload payload: distinct per
// (file, step) so overwrites are distinguishable, with short runs so
// deflate has something to compress.
func payloadByte(file string, step int, off int64) byte {
	h := 0
	for _, c := range file {
		h = h*31 + int(c)
	}
	return byte(h + step*37 + int(off/8))
}

// MixedWorkload is the harness's standard mixed write/sync/overwrite
// script over two files: sequential checkpoint streams with interior
// overwrites, interleaved syncs, and closes — the acceptance workload
// of the crash-consistency subsystem.
func MixedWorkload() []Step {
	return []Step{
		{StepWrite, "ckpt/a.img", 0, 100},
		{StepWrite, "ckpt/a.img", 100, 100},
		{StepWrite, "ckpt/b.img", 0, 150},
		{StepSync, "ckpt/a.img", 0, 0},
		{StepWrite, "ckpt/a.img", 200, 100},
		{StepWrite, "ckpt/a.img", 50, 80}, // overwrite before the sync point
		{StepWrite, "ckpt/b.img", 150, 90},
		{StepSync, "ckpt/b.img", 0, 0},
		{StepWrite, "ckpt/a.img", 300, 120},
		{StepWrite, "ckpt/b.img", 100, 60}, // overwrite of synced data
		{StepSync, "ckpt/a.img", 0, 0},
		{StepWrite, "ckpt/a.img", 0, 40}, // overwrite of synced data
		{StepWrite, "ckpt/b.img", 240, 100},
		{StepClose, "ckpt/b.img", 0, 0},
		{StepWrite, "ckpt/a.img", 0, 192}, // full-chunk rewrite: whole frames go dead
		{StepSync, "ckpt/a.img", 0, 0},    // compaction policy (when enabled) fires here
		{StepWrite, "ckpt/a.img", 420, 100},
		{StepClose, "ckpt/a.img", 0, 0},
	}
}

// RunHarness records the workload through a CRFS mount over a crashfs
// backend, then verifies the durability contract at every enumerated
// crash point. It returns the result (with any violations) and an error
// only for harness plumbing failures — contract violations are data,
// not errors.
func RunHarness(cfg HarnessConfig, steps []Step) (*HarnessResult, error) {
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 64
	}
	crash := New()
	if err := crash.MkdirAll("ckpt"); err != nil {
		return nil, err
	}
	opts := core.Options{
		ChunkSize:      cfg.ChunkSize,
		BufferPoolSize: 16 * cfg.ChunkSize,
		IOThreads:      1,
		Codec:          cfg.Codec,
	}
	if cfg.Compaction {
		// Aggressive thresholds so the mixed workload's overwrites make
		// the record mount compact at its Sync/Close points, injecting
		// the rewrite protocol's mutations into the crash log.
		opts.Compaction = core.CompactionPolicy{MinDeadRatio: 0.01, MinDeadBytes: 1}
	}
	fs, err := core.Mount(crash, opts)
	if err != nil {
		return nil, err
	}

	// Record phase: run the script, tracking the model content after
	// every step and the acknowledgment points.
	model := map[string][]byte{}
	var snaps []map[string][]byte
	var acks []ack
	handles := map[string]vfs.File{}
	handle := func(name string) (vfs.File, error) {
		if f, ok := handles[name]; ok {
			return f, nil
		}
		f, err := fs.Open(name, vfs.WriteOnly|vfs.Create)
		if err != nil {
			return nil, err
		}
		handles[name] = f
		return f, nil
	}
	for i, s := range steps {
		switch s.Kind {
		case StepWrite:
			f, err := handle(s.File)
			if err != nil {
				return nil, err
			}
			data := make([]byte, s.Len)
			for j := range data {
				data[j] = payloadByte(s.File, i, s.Off+int64(j))
			}
			if _, err := f.WriteAt(data, s.Off); err != nil {
				return nil, err
			}
			cur := model[s.File]
			if need := s.Off + int64(s.Len); int64(len(cur)) < need {
				grown := make([]byte, need)
				copy(grown, cur)
				cur = grown
			}
			copy(cur[s.Off:], data)
			model[s.File] = cur
		case StepSync:
			f, err := handle(s.File)
			if err != nil {
				return nil, err
			}
			if err := f.Sync(); err != nil {
				return nil, err
			}
			acks = append(acks, ack{file: s.File, logLen: crash.Len(), step: i})
		case StepClose:
			if f, ok := handles[s.File]; ok {
				delete(handles, s.File)
				if err := f.Close(); err != nil {
					return nil, err
				}
				acks = append(acks, ack{file: s.File, logLen: crash.Len(), step: i})
			}
		default:
			return nil, fmt.Errorf("crashfs: unknown step kind %d", s.Kind)
		}
		snap := map[string][]byte{}
		for name, data := range model {
			snap[name] = append([]byte(nil), data...)
		}
		snaps = append(snaps, snap)
	}
	for name, f := range handles {
		if err := f.Close(); err != nil {
			return nil, err
		}
		acks = append(acks, ack{file: name, logLen: crash.Len(), step: len(steps) - 1})
	}
	if err := fs.Unmount(); err != nil {
		return nil, err
	}
	// Unmount drains everything: a global acknowledgment.
	acks = append(acks, ack{file: "", logLen: crash.Len(), step: len(steps) - 1})

	// Enumerate crash points.
	points := crash.Boundaries()
	if cfg.Torn {
		for i := 0; i < crash.Len(); i++ {
			points = append(points, crash.TornPoints(i)...)
		}
	}
	if cfg.Stride > 1 {
		sampled := make([]Point, 0, len(points)/cfg.Stride+2)
		for i, p := range points {
			if i%cfg.Stride == 0 || i == len(points)-1 {
				sampled = append(sampled, p)
			}
		}
		points = sampled
	}

	res := &HarnessResult{
		Mutations:         crash.Len(),
		Points:            len(points),
		RecordCompactions: fs.Stats().ContainersCompacted,
	}
	for _, p := range points {
		if err := verifyPoint(crash, cfg, p, snaps, acks, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// verifyPoint checks the durability contract for one crash point.
func verifyPoint(crash *FS, cfg HarnessConfig, p Point, snaps []map[string][]byte, acks []ack, res *HarnessResult) error {
	replayed, err := crash.Replay(p)
	if err != nil {
		return err
	}
	opts := core.Options{
		ChunkSize:      cfg.ChunkSize,
		BufferPoolSize: 16 * cfg.ChunkSize,
		IOThreads:      1,
		Codec:          cfg.Codec,
		RepairOnOpen:   cfg.Repair,
	}
	vfs2, err := core.Mount(replayed, opts)
	if err != nil {
		return err
	}
	defer vfs2.Unmount()
	violate := func(format string, args ...any) {
		if len(res.Violations) < 20 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("point{mut=%d,bytes=%d}: %s", p.Mut, p.Bytes, fmt.Sprintf(format, args...)))
		}
	}
	framed := cfg.Codec != nil && cfg.Codec.ID() != codec.RawID
	last := len(snaps) - 1
	for name := range snaps[last] {
		ackStep := -1
		for _, a := range acks {
			if (a.file == name || a.file == "") && a.logLen <= p.Mut && a.step > ackStep {
				ackStep = a.step
			}
		}
		var ackContent []byte
		if ackStep >= 0 {
			ackContent = snaps[ackStep][name]
		}
		got, rerr := readAll(vfs2, name)
		if rerr != nil {
			if len(ackContent) > 0 {
				violate("%s: unreadable after remount: %v", name, rerr)
			}
			continue
		}
		if framed && ackStep < 0 {
			// A cut inside the very first frame header of a brand-new
			// container leaves < HeaderSize bytes that cannot be
			// classified container-vs-plain; nothing was acknowledged, so
			// the bytes carry no contract. Skip content checks.
			if info, serr := replayed.Stat(name); serr == nil && info.Size < codec.HeaderSize {
				continue
			}
		}
		lo := max(ackStep, 0)
		var maxLen int64
		for t := lo; t <= last; t++ {
			if n := int64(len(snaps[t][name])); n > maxLen {
				maxLen = n
			}
		}
		if int64(len(got)) < int64(len(ackContent)) {
			violate("%s: %d readable bytes, %d were acknowledged", name, len(got), len(ackContent))
			continue
		}
		if int64(len(got)) > maxLen {
			violate("%s: %d readable bytes exceed any issued state (%d)", name, len(got), maxLen)
			continue
		}
		for x := range got {
			ok := false
			for t := lo; t <= last && !ok; t++ {
				s := snaps[t][name]
				ok = x < len(s) && s[x] == got[x]
			}
			if !ok && x >= len(ackContent) && got[x] == 0 {
				ok = true // unacknowledged extent not yet landed: a hole
			}
			if !ok {
				violate("%s: byte %d = %#x matches no post-acknowledgment state", name, x, got[x])
				break
			}
		}
		if cfg.Compaction {
			// Compact the crash-state container — whatever shape the cut
			// left it in (clean, torn-and-salvaged, mid-replace) — and
			// prove the readable bytes are untouched.
			if cerr := vfs2.Compact(name); cerr != nil {
				violate("%s: compaction at crash state failed: %v", name, cerr)
				continue
			}
			again, rerr := readAll(vfs2, name)
			if rerr != nil {
				violate("%s: unreadable after crash-state compaction: %v", name, rerr)
				continue
			}
			if !bytes.Equal(again, got) {
				violate("%s: crash-state compaction changed readable bytes (%d -> %d)", name, len(got), len(again))
			}
		}
	}
	if framed {
		// Rule 5: scrub the whole crash state, re-verifying every frame
		// the contract reads may not have touched (dead frames, files with
		// nothing acknowledged). Tears are expected debris — salvage has
		// already bounded them — but a corrupt or checksum-failing frame
		// cannot come from a cut: the log only ever loses its tail.
		srep, serr := vfs2.Scrub(core.ScrubOptions{})
		if serr != nil {
			return serr
		}
		if srep.CorruptFrames > 0 || srep.ChecksumFailures > 0 {
			violate("crash-state scrub found %d corrupt frames (%d checksum failures); a cut can only tear, not rot",
				srep.CorruptFrames, srep.ChecksumFailures)
		}
	}
	st := vfs2.Stats()
	if st.ChecksumFailed > 0 {
		violate("crash state failed %d payload checksums; torn v2 frames must fail structurally, not decode to phantom data",
			st.ChecksumFailed)
	}
	res.ChecksumVerified += st.ChecksumVerified
	res.ChecksumSkipped += st.ChecksumSkipped
	res.ChecksumFailed += st.ChecksumFailed
	res.Salvaged += st.ContainersSalvaged
	res.Repaired += st.ContainersRepaired
	res.FramesDropped += st.SalvageFramesDropped
	res.BytesTruncated += st.SalvageBytesTruncated
	res.PointCompactions += st.ContainersCompacted
	return nil
}

// readAll reads a file's full logical content through the mount.
func readAll(fs *core.FS, name string) ([]byte, error) {
	f, err := fs.Open(name, vfs.ReadOnly)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, info.Size)
	if len(buf) == 0 {
		return buf, nil
	}
	n, err := f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return buf[:n], nil
}
