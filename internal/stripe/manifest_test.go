package stripe

import (
	"errors"
	"reflect"
	"testing"

	"crfs/internal/codec"
)

func sampleManifest() *Manifest {
	return &Manifest{
		Object:    "app/rank3.ckpt",
		Size:      10 << 20,
		ChunkSize: 4 << 20,
		Replicas:  2,
		Chunks: []Chunk{
			{Offset: 0, Length: 4 << 20, CRC: 0xdeadbeef, Nodes: []string{"n1", "n2"}},
			{Offset: 4 << 20, Length: 4 << 20, CRC: 0x01020304, Nodes: []string{"n3", "n1"}},
			{Offset: 8 << 20, Length: 2 << 20, CRC: 0, Nodes: []string{"n2", "n3"}},
		},
	}
}

func TestManifestRoundtrip(t *testing.T) {
	m := sampleManifest()
	got, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", m, got)
	}
	// Empty object: zero chunks.
	empty := &Manifest{Object: "empty", ChunkSize: 4 << 20, Replicas: 2, Chunks: []Chunk{}}
	got, err = DecodeManifest(empty.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 0 || len(got.Chunks) != 0 {
		t.Fatalf("empty roundtrip = %+v", got)
	}
}

// TestManifestDetectsCorruption: every single-byte flip must fail the
// self-checksum (or structural parse), never decode silently wrong.
func TestManifestDetectsCorruption(t *testing.T) {
	enc := sampleManifest().Encode()
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x20
		if m, err := DecodeManifest(bad); err == nil {
			// A flip inside the name of a node could in principle collide,
			// but CRC32-C over the whole body catches single-byte flips.
			t.Fatalf("flip at byte %d decoded silently: %+v", i, m)
		}
	}
	// Truncation too.
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 2} {
		if _, err := DecodeManifest(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded silently", cut)
		}
	}
	if _, err := DecodeManifest(nil); err == nil {
		t.Fatal("empty manifest decoded")
	}
	// The checksum failure is typed: a scrubber distinguishes bit rot
	// from structural damage.
	bad := append([]byte(nil), enc...)
	bad[20] ^= 0xFF
	if _, err := DecodeManifest(bad); !errors.Is(err, codec.ErrChecksum) && !errors.Is(err, codec.ErrCorrupt) {
		if err == nil {
			t.Fatal("corrupt manifest decoded")
		}
	}
}

func TestObjectNames(t *testing.T) {
	if got := ChunkName("a/b.ckpt", 7); got != "a/b.ckpt.s00000007" {
		t.Fatalf("ChunkName = %q", got)
	}
	if got := ManifestName("a/b.ckpt"); got != "a/b.ckpt.crfsm" {
		t.Fatalf("ManifestName = %q", got)
	}
	cases := []struct {
		in   string
		obj  string
		idx  int
		kind Kind
	}{
		{"a/b.ckpt.crfsm", "a/b.ckpt", 0, KindManifest},
		{"a/b.ckpt.s00000007", "a/b.ckpt", 7, KindChunk},
		{"x.s12345678", "x", 12345678, KindChunk},
		{"plain-object", "", 0, KindOther},
		{"x.s123", "", 0, KindOther},       // wrong width
		{"x.sabcdefgh", "", 0, KindOther},  // not a number
		{".crfsm", "", 0, KindOther},       // no object part
		{"x.s00000001x", "", 0, KindOther}, // trailing junk
	}
	for _, tc := range cases {
		obj, idx, kind := ParseObjectName(tc.in)
		if obj != tc.obj || idx != tc.idx || kind != tc.kind {
			t.Errorf("ParseObjectName(%q) = (%q, %d, %v), want (%q, %d, %v)",
				tc.in, obj, idx, kind, tc.obj, tc.idx, tc.kind)
		}
	}
	// Names must round-trip through the classifier.
	obj, idx, kind := ParseObjectName(ChunkName("deep/dir/name", 42))
	if obj != "deep/dir/name" || idx != 42 || kind != KindChunk {
		t.Fatalf("chunk name did not round-trip: %q %d %v", obj, idx, kind)
	}
}
