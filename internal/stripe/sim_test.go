package stripe

import (
	"fmt"
	"testing"

	"crfs/internal/des"
	"crfs/internal/simnet"
)

// simRestore models a striped restore in virtual time: chunks of one
// checkpoint are placed over n benefactor nodes with the real Place
// function, and each chunk's transfer serializes on its primary node's
// link (GigE bandwidth, as in the paper's testbed). The virtual
// completion time is the restore makespan; no real bytes move and no
// wall-clock time passes, so the run is exact and deterministic.
func simRestore(nNodes, nChunks int, chunkSize int64) des.Time {
	env := des.New()
	links := make(map[string]*simnet.Link, nNodes)
	ids := make([]string, nNodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("bene-%02d", i)
		links[ids[i]] = simnet.NewLink(env, simnet.GigEBps, simnet.GigELatency)
	}
	for c := 0; c < nChunks; c++ {
		primary := Place(ids, ChunkName("sim.ckpt", c), 1)[0]
		link := links[primary]
		env.Spawn(fmt.Sprintf("chunk-%d", c), func(p *des.Proc) {
			link.Transfer(p, chunkSize)
		})
	}
	return env.Run()
}

// TestSimStripedRestoreScales proves the striping policy on the
// virtual-time substrate before any TCP is involved: restore makespan
// over 3 nodes must be at least 2x shorter than over 1 node, and adding
// nodes must keep helping monotonically (within placement imbalance).
func TestSimStripedRestoreScales(t *testing.T) {
	const (
		nChunks   = 64
		chunkSize = int64(4 << 20)
	)
	t1 := simRestore(1, nChunks, chunkSize)
	t3 := simRestore(3, nChunks, chunkSize)
	t6 := simRestore(6, nChunks, chunkSize)
	t.Logf("virtual restore makespan: 1 node %.3fs, 3 nodes %.3fs, 6 nodes %.3fs",
		des.Seconds(t1), des.Seconds(t3), des.Seconds(t6))
	if t1 < des.Time(nChunks)*int64(chunkSize)/simnet.GigEBps*des.Second {
		t.Fatalf("single-node makespan %v implausibly fast", t1)
	}
	if float64(t1)/float64(t3) < 2.0 {
		t.Errorf("3-node speedup %.2fx, want >= 2x", float64(t1)/float64(t3))
	}
	if t6 >= t3 {
		t.Errorf("6 nodes (%v) not faster than 3 (%v)", t6, t3)
	}
}

// TestSimDeterministic: the simulation is exact — identical inputs give
// bit-identical virtual times across runs, so scaling regressions are
// reproducible.
func TestSimDeterministic(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		a := simRestore(n, 48, 2<<20)
		b := simRestore(n, 48, 2<<20)
		if a != b {
			t.Fatalf("simRestore(%d) not deterministic: %d vs %d", n, a, b)
		}
	}
}

// TestSimRebalanceMovesMinimalBytes quantifies the join protocol in
// virtual time: the bytes a new node must receive during rebalancing
// are about k/(N+1) of the store, not a full reshuffle.
func TestSimRebalanceMovesMinimalBytes(t *testing.T) {
	const (
		nChunks   = 512
		chunkSize = int64(1 << 20)
		k         = 2
	)
	before := make([]string, 6)
	for i := range before {
		before[i] = fmt.Sprintf("bene-%02d", i)
	}
	after := append(append([]string{}, before...), "bene-99")

	env := des.New()
	link := simnet.NewLink(env, simnet.GigEBps, simnet.GigELatency)
	var movedBytes int64
	for c := 0; c < nChunks; c++ {
		key := ChunkName("rb.ckpt", c)
		old := Place(before, key, k)
		for _, id := range Place(after, key, k) {
			if !contains(old, id) {
				movedBytes += chunkSize
				env.Spawn(key, func(p *des.Proc) { link.Transfer(p, chunkSize) })
			}
		}
	}
	env.Run()
	total := int64(nChunks) * chunkSize * k
	frac := float64(movedBytes) / float64(total)
	t.Logf("rebalance moved %d of %d replica bytes (%.1f%%)", movedBytes, total, frac*100)
	if frac > 0.30 {
		t.Errorf("join moved %.1f%% of replica bytes, want ~%.0f%%", frac*100, 100.0/float64(len(after)))
	}
	if movedBytes == 0 {
		t.Error("join moved nothing; new node would stay empty")
	}
}
