package stripe

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// memCluster builds a store over n in-memory nodes with small chunks so
// modest payloads still stripe widely.
func memCluster(n int, cfg Config) (*Store, []*MemNode) {
	nodes := make([]*MemNode, n)
	ns := make([]Node, n)
	for i := range nodes {
		nodes[i] = NewMemNode(fmt.Sprintf("mem-%02d", i))
		ns[i] = nodes[i]
	}
	return New(cfg, ns...), nodes
}

func payload(seed, n int) []byte {
	r := rand.New(rand.NewSource(int64(seed)))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func mustPut(t *testing.T, s *Store, name string, body []byte) {
	t.Helper()
	if err := s.Put(name, bytes.NewReader(body), int64(len(body))); err != nil {
		t.Fatalf("PUT %s: %v", name, err)
	}
}

func mustGet(t *testing.T, s *Store, name string, want []byte) {
	t.Helper()
	var got bytes.Buffer
	n, err := s.Get(name, &got)
	if err != nil {
		t.Fatalf("GET %s: %v", name, err)
	}
	if n != int64(len(want)) || !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("GET %s: %d bytes, want %d identical", name, n, len(want))
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	s, nodes := memCluster(4, Config{ChunkSize: 8 << 10, Replicas: 2})
	for i, size := range []int{0, 1, 8 << 10, (8 << 10) + 1, 100 << 10} {
		name := fmt.Sprintf("rt/ckpt-%d", i)
		body := payload(i, size)
		mustPut(t, s, name, body)
		mustGet(t, s, name, body)
	}
	// Every node holds a manifest copy of every object.
	for _, n := range nodes {
		manifests := 0
		for _, obj := range n.Objects() {
			if _, _, kind := ParseObjectName(obj); kind == KindManifest {
				manifests++
			}
		}
		if manifests != 5 {
			t.Errorf("node %s holds %d manifest copies, want 5", n.ID(), manifests)
		}
	}
	// Chunks are k-replicated: total replicas = 2 x logical chunks.
	st := s.Stats()
	wantChunks := int64(0)
	for _, size := range []int{0, 1, 8 << 10, (8 << 10) + 1, 100 << 10} {
		wantChunks += int64((size + (8<<10 - 1)) / (8 << 10))
	}
	if st.ChunksPut != 2*wantChunks {
		t.Errorf("ChunksPut = %d, want %d", st.ChunksPut, 2*wantChunks)
	}

	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 || names[0] != "rt/ckpt-0" {
		t.Errorf("List = %v", names)
	}
}

// TestGetSurvivesKilledNode: with k=2, any single dead node must not
// affect restore output.
func TestGetSurvivesKilledNode(t *testing.T) {
	s, nodes := memCluster(3, Config{ChunkSize: 4 << 10, Replicas: 2})
	body := payload(7, 256<<10)
	mustPut(t, s, "victim", body)
	for _, down := range nodes {
		down.SetDown(true)
		mustGet(t, s, "victim", body)
		down.SetDown(false)
	}
	if s.Stats().ReplicaFallbacks == 0 {
		t.Error("no replica fallbacks recorded while nodes were down")
	}
}

// TestGetSurvivesCorruptReplica: a silently corrupted replica is
// detected by its fingerprint and the restore reads the good copy; the
// next scrub repairs the bad replica, and a scrub after that finds
// zero residual checksum failures.
func TestGetSurvivesCorruptReplica(t *testing.T) {
	s, nodes := memCluster(3, Config{ChunkSize: 4 << 10, Replicas: 2})
	body := payload(11, 128<<10)
	mustPut(t, s, "rotted", body)

	// Corrupt every chunk replica living on node 0.
	corrupted := 0
	for _, obj := range nodes[0].Objects() {
		if _, _, kind := ParseObjectName(obj); kind == KindChunk {
			nodes[0].Corrupt(obj)
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("node 0 held no chunk replicas to corrupt")
	}
	mustGet(t, s, "rotted", body)
	if s.Stats().ChecksumFailed == 0 {
		t.Error("corruption was not detected during GET")
	}

	rep, err := s.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v (%s)", err, rep)
	}
	if rep.ChunksRepaired != corrupted {
		t.Errorf("scrub repaired %d chunks, want %d (%s)", rep.ChunksRepaired, corrupted, rep)
	}
	// Residual pass: everything must verify clean now.
	rep, err = s.Scrub()
	if err != nil {
		t.Fatalf("second scrub: %v", err)
	}
	if rep.ChunksRepaired != 0 || rep.ManifestsFixed != 0 || rep.LostChunks != 0 {
		t.Errorf("residual scrub not clean: %s", rep)
	}
	mustGet(t, s, "rotted", body)
}

// TestScrubRepairsMissingReplicaAndManifest: wiping one node entirely
// (disk replacement) must be fully healed by one scrub pass.
func TestScrubRepairsMissingReplicaAndManifest(t *testing.T) {
	s, nodes := memCluster(3, Config{ChunkSize: 4 << 10, Replicas: 2})
	body := payload(13, 64<<10)
	mustPut(t, s, "wiped", body)
	for _, obj := range nodes[1].Objects() {
		if err := nodes[1].Delete(obj); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v (%s)", err, rep)
	}
	if rep.ManifestsFixed == 0 {
		t.Errorf("manifest copy not restored: %s", rep)
	}
	rep, err = s.Scrub()
	if err != nil || rep.ChunksRepaired != 0 || rep.ManifestsFixed != 0 {
		t.Errorf("residual scrub not clean: %s err=%v", rep, err)
	}
	mustGet(t, s, "wiped", body)
}

// TestScrubReportsLoss: when every replica of a chunk is corrupt, scrub
// must say so loudly rather than repair from garbage.
func TestScrubReportsLoss(t *testing.T) {
	s, nodes := memCluster(2, Config{ChunkSize: 4 << 10, Replicas: 2})
	body := payload(17, 8<<10)
	mustPut(t, s, "gone", body)
	for _, n := range nodes {
		for _, obj := range n.Objects() {
			if _, _, kind := ParseObjectName(obj); kind == KindChunk {
				n.Corrupt(obj)
			}
		}
	}
	rep, err := s.Scrub()
	if err == nil || rep.LostChunks == 0 {
		t.Fatalf("scrub of doubly-corrupt chunks: err=%v %s", err, rep)
	}
	if !errors.Is(err, ErrChunkLost) {
		t.Fatalf("loss error %v does not wrap ErrChunkLost", err)
	}
}

func TestDeleteRemovesEverything(t *testing.T) {
	s, nodes := memCluster(3, Config{ChunkSize: 4 << 10, Replicas: 2})
	mustPut(t, s, "doomed", payload(19, 64<<10))
	mustPut(t, s, "spared", payload(23, 16<<10))
	if err := s.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := s.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		for _, obj := range n.Objects() {
			if o, _, _ := ParseObjectName(obj); o == "doomed" {
				t.Errorf("node %s still holds %s", n.ID(), obj)
			}
		}
	}
	names, err := s.List()
	if err != nil || !reflect.DeepEqual(names, []string{"spared"}) {
		t.Fatalf("List after delete = %v, %v", names, err)
	}
	mustGet(t, s, "spared", payload(23, 16<<10))
}

// TestJoinRebalance: a node joining an existing cluster picks up its
// rendezvous share of replicas, and the donors drop theirs, leaving a
// clean scrub.
func TestJoinRebalance(t *testing.T) {
	s, _ := memCluster(3, Config{ChunkSize: 4 << 10, Replicas: 2})
	bodies := map[string][]byte{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("jr/obj-%d", i)
		bodies[name] = payload(100+i, 64<<10)
		mustPut(t, s, name, bodies[name])
	}
	joined := NewMemNode("mem-99")
	s.Join(joined)
	rep, err := s.Rebalance()
	if err != nil {
		t.Fatalf("rebalance: %v (%s)", err, rep)
	}
	if rep.ChunksMoved == 0 {
		t.Fatalf("join moved no chunks: %s", rep)
	}
	if rep.ChunksMoved != rep.ChunksDropped {
		t.Errorf("moved %d != dropped %d (replication factor drifted)", rep.ChunksMoved, rep.ChunksDropped)
	}
	if len(joined.Objects()) == 0 {
		t.Error("joined node received nothing")
	}
	// Placement is now converged: a second rebalance is a no-op, and a
	// scrub finds nothing to fix.
	rep, err = s.Rebalance()
	if err != nil || rep.ChunksMoved != 0 {
		t.Errorf("second rebalance not idempotent: %s err=%v", rep, err)
	}
	srep, err := s.Scrub()
	if err != nil || srep.ChunksRepaired != 0 || srep.StraysDeleted != 0 {
		t.Errorf("post-rebalance scrub not clean: %s err=%v", srep, err)
	}
	for name, body := range bodies {
		mustGet(t, s, name, body)
	}
}

// TestDrainRebalanceRemove is the node-leave protocol: drain, migrate,
// detach — every object must survive with full replication on the
// remaining nodes.
func TestDrainRebalanceRemove(t *testing.T) {
	s, nodes := memCluster(4, Config{ChunkSize: 4 << 10, Replicas: 2})
	bodies := map[string][]byte{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("dr/obj-%d", i)
		bodies[name] = payload(200+i, 48<<10)
		mustPut(t, s, name, bodies[name])
	}
	victim := nodes[2]
	s.Drain(victim.ID())
	// Draining nodes still serve reads but receive no new placements.
	mustPut(t, s, "dr/late", payload(999, 32<<10))
	bodies["dr/late"] = payload(999, 32<<10)
	for _, obj := range victim.Objects() {
		if o, _, kind := ParseObjectName(obj); kind == KindChunk && o == "dr/late" {
			t.Errorf("draining node received new chunk %s", obj)
		}
	}

	if _, err := s.Rebalance(); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	// No chunk replica remains on the drained node (manifest copies may,
	// until Remove).
	for _, obj := range victim.Objects() {
		if _, _, kind := ParseObjectName(obj); kind == KindChunk {
			t.Errorf("drained node still holds chunk %s", obj)
		}
	}
	s.Remove(victim.ID())
	victim.SetDown(true) // it is really gone

	for name, body := range bodies {
		mustGet(t, s, name, body)
	}
	// Replication is intact without the removed node: any single
	// remaining node can die and restores still work.
	nodes[0].SetDown(true)
	for name, body := range bodies {
		mustGet(t, s, name, body)
	}
	nodes[0].SetDown(false)
	rep, err := s.Scrub()
	if err != nil || rep.LostChunks > 0 {
		t.Fatalf("post-remove scrub: %v (%s)", err, rep)
	}
}

// TestPutFailsCleanly: a Put that cannot complete (a node dies
// mid-upload) must not leave a restorable-looking object; the manifest
// never commits and strays are orphans until a manifest exists.
func TestPutFailsCleanly(t *testing.T) {
	s, nodes := memCluster(2, Config{ChunkSize: 4 << 10, Replicas: 2})
	nodes[1].SetDown(true)
	body := payload(31, 64<<10)
	if err := s.Put("halfway", bytes.NewReader(body), int64(len(body))); err == nil {
		t.Fatal("PUT with a dead replica target succeeded")
	}
	var sink bytes.Buffer
	if _, err := s.Get("halfway", &sink); err == nil {
		t.Fatal("GET of uncommitted object succeeded")
	}
	names, err := s.List()
	if err != nil || len(names) != 0 {
		t.Fatalf("List after failed put = %v, %v", names, err)
	}
	// After the node returns, a fresh Put under the same name wins and
	// scrub GCs the stale strays against the new manifest.
	nodes[1].SetDown(false)
	body2 := payload(37, 32<<10)
	mustPut(t, s, "halfway", body2)
	if _, err := s.Scrub(); err != nil {
		t.Fatal(err)
	}
	mustGet(t, s, "halfway", body2)
}

func TestNoNodes(t *testing.T) {
	s := New(Config{})
	if err := s.Put("x", bytes.NewReader(nil), 0); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Put on empty store: %v", err)
	}
	if _, err := s.Get("x", &bytes.Buffer{}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Get on empty store: %v", err)
	}
}
