package stripe

import (
	"fmt"
	"reflect"
	"testing"
)

func nodeIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%02d", i)
	}
	return ids
}

func TestPlaceDeterministicAndOrderIndependent(t *testing.T) {
	nodes := nodeIDs(7)
	shuffled := []string{nodes[3], nodes[0], nodes[6], nodes[1], nodes[5], nodes[2], nodes[4]}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("ckpt-%d.s%08d", i%5, i)
		a := Place(nodes, key, 3)
		b := Place(shuffled, key, 3)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Place(%q) depends on input order: %v vs %v", key, a, b)
		}
		if len(a) != 3 {
			t.Fatalf("Place(%q) returned %d nodes, want 3", key, len(a))
		}
		seen := map[string]bool{}
		for _, id := range a {
			if seen[id] {
				t.Fatalf("Place(%q) repeated node %s", key, id)
			}
			seen[id] = true
		}
	}
}

func TestPlaceEdgeCases(t *testing.T) {
	if got := Place(nil, "k", 2); got != nil {
		t.Fatalf("Place(nil) = %v", got)
	}
	if got := Place([]string{"a"}, "k", 0); got != nil {
		t.Fatalf("Place(k=0) = %v", got)
	}
	got := Place([]string{"b", "a"}, "k", 5)
	if len(got) != 2 {
		t.Fatalf("Place(k>N) = %v, want both nodes", got)
	}
}

// TestPlaceBalance: rendezvous hashing should spread primaries roughly
// evenly. With 8 nodes and 8000 keys, expect ~1000 primaries each;
// assert no node is off by more than 3x either way, which FNV-1a
// clears comfortably while still catching a broken mix.
func TestPlaceBalance(t *testing.T) {
	nodes := nodeIDs(8)
	counts := map[string]int{}
	const keys = 8000
	for i := 0; i < keys; i++ {
		p := Place(nodes, fmt.Sprintf("object-%d.s%08d", i/100, i%100), 2)
		counts[p[0]]++
	}
	want := keys / len(nodes)
	for id, c := range counts {
		if c < want/3 || c > want*3 {
			t.Errorf("node %s holds %d primaries, want ~%d", id, c, want)
		}
	}
	if len(counts) != len(nodes) {
		t.Errorf("only %d of %d nodes ever primary", len(counts), len(nodes))
	}
}

// TestPlaceSpreadsChunksOfOneObject pins a subtle hashing regression:
// chunk keys of one object differ only in trailing digits, and without
// an avalanche finalizer those changes never reached the high bits that
// decide the rendezvous comparison — every chunk of an object got the
// same primary and restores serialized onto one node.
func TestPlaceSpreadsChunksOfOneObject(t *testing.T) {
	nodes := nodeIDs(3)
	counts := map[string]int{}
	const chunks = 48
	for i := 0; i < chunks; i++ {
		counts[Place(nodes, ChunkName("one-object.ckpt", i), 2)[0]]++
	}
	for _, id := range nodes {
		if counts[id] == 0 {
			t.Fatalf("node %s is primary for no chunk of the object: %v", id, counts)
		}
		if counts[id] > chunks*2/3 {
			t.Fatalf("node %s is primary for %d of %d chunks: %v", id, counts[id], chunks, counts)
		}
	}
}

// TestPlaceMinimalMovement: adding one node to N must relocate only
// about k/(N+1) of replica slots — the property that makes Join cheap.
func TestPlaceMinimalMovement(t *testing.T) {
	before := nodeIDs(8)
	after := append(nodeIDs(8), "node-99")
	const keys = 4000
	moved := 0
	total := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("m-%d.s%08d", i/64, i%64)
		a := Place(before, key, 2)
		b := Place(after, key, 2)
		for _, id := range b {
			total++
			if !contains(a, id) {
				moved++
			}
		}
	}
	// Expected moved fraction is ~1/(N+1) ≈ 11% of slots; fail above 20%.
	if frac := float64(moved) / float64(total); frac > 0.20 {
		t.Errorf("join moved %.1f%% of replica slots, want ~11%%", frac*100)
	}
	// And removal must not shuffle survivors: every slot that stays on a
	// surviving node keeps its assignment.
	without := append(nodeIDs(5)[:3], nodeIDs(8)[4:]...) // drop node-03
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("r-%d", i)
		a := Place(before, key, 2)
		b := Place(without, key, 2)
		for _, id := range a {
			if id != "node-03" && !contains(b, id) {
				t.Fatalf("removing node-03 evicted %s from key %q: %v -> %v", id, key, a, b)
			}
		}
	}
}
