package stripe

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"crfs/internal/codec"
)

// A manifest records one striped checkpoint's layout: how the object
// was chunked, where every chunk's replicas live, and each chunk's
// CRC32-C fingerprint (the same Castagnoli polynomial format-v2 frames
// use, so a scrub can cross-check a chunk end to end). Manifests are
// small, so they are fully replicated: every node holds a copy under
// ManifestName(object), and any single surviving node can drive a full
// restore.
//
// The encoding is line-oriented text closed by a self-checksum line, so
// a torn or bit-rotten manifest copy is detected on decode and the
// reader falls through to the next node's copy:
//
//	CRFSM 1
//	object <name>
//	size <bytes>
//	chunksize <bytes>
//	replicas <k>
//	chunks <n>
//	chunk <idx> <offset> <length> <crc32c-hex> <node,node,...>
//	...
//	sum <crc32c-hex of every preceding byte>
type Manifest struct {
	Object    string
	Size      int64
	ChunkSize int64
	Replicas  int
	Chunks    []Chunk
}

// Chunk is one stripe unit of a checkpoint.
type Chunk struct {
	Offset int64
	Length int64
	CRC    uint32   // CRC32-C of the chunk payload
	Nodes  []string // replica holders, placement order (primary first)
}

// manifestSuffix tags manifest objects in a node's flat namespace.
const manifestSuffix = ".crfsm"

// chunkSep separates an object name from a chunk index in the
// per-chunk object names stored on nodes.
const chunkSep = ".s"

// ManifestName returns the node-local object name holding object's
// manifest copy.
func ManifestName(object string) string { return object + manifestSuffix }

// ChunkName returns the node-local object name holding chunk idx of
// object.
func ChunkName(object string, idx int) string {
	return fmt.Sprintf("%s%s%08d", object, chunkSep, idx)
}

// ParseObjectName classifies a node-local object name as a manifest
// copy, a chunk replica, or an unrelated object.
func ParseObjectName(name string) (object string, chunk int, kind Kind) {
	if o, ok := strings.CutSuffix(name, manifestSuffix); ok && o != "" {
		return o, 0, KindManifest
	}
	if i := strings.LastIndex(name, chunkSep); i > 0 {
		idx := name[i+len(chunkSep):]
		if len(idx) == 8 {
			if n, err := strconv.Atoi(idx); err == nil && n >= 0 {
				return name[:i], n, KindChunk
			}
		}
	}
	return "", 0, KindOther
}

// Kind classifies node-local object names.
type Kind int

const (
	KindOther Kind = iota
	KindManifest
	KindChunk
)

// Encode renders the manifest with its trailing self-checksum.
func (m *Manifest) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "CRFSM 1\n")
	fmt.Fprintf(&b, "object %s\n", m.Object)
	fmt.Fprintf(&b, "size %d\n", m.Size)
	fmt.Fprintf(&b, "chunksize %d\n", m.ChunkSize)
	fmt.Fprintf(&b, "replicas %d\n", m.Replicas)
	fmt.Fprintf(&b, "chunks %d\n", len(m.Chunks))
	for i, c := range m.Chunks {
		fmt.Fprintf(&b, "chunk %d %d %d %08x %s\n", i, c.Offset, c.Length, c.CRC, strings.Join(c.Nodes, ","))
	}
	fmt.Fprintf(&b, "sum %08x\n", codec.Checksum(b.Bytes()))
	return b.Bytes()
}

// DecodeManifest parses and verifies an encoded manifest. Any
// structural damage or checksum mismatch returns an error — the caller
// treats the copy as corrupt and reads another node's.
func DecodeManifest(data []byte) (*Manifest, error) {
	// The sum line is exactly "sum " + 8 lowercase hex digits + "\n" at
	// the very end; anything looser would let flips inside the line
	// itself (case changes, trailing damage) decode silently.
	const sumLen = len("sum xxxxxxxx\n")
	sumAt := len(data) - sumLen
	if sumAt < 0 || !bytes.HasPrefix(data[sumAt:], []byte("sum ")) || data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("stripe: manifest: missing checksum line")
	}
	hex := data[sumAt+4 : len(data)-1]
	var want uint32
	for _, c := range hex {
		switch {
		case c >= '0' && c <= '9':
			want = want<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			want = want<<4 | uint32(c-'a'+10)
		default:
			return nil, fmt.Errorf("stripe: manifest: bad checksum line %q", data[sumAt:])
		}
	}
	if got := codec.Checksum(data[:sumAt]); got != want {
		return nil, fmt.Errorf("stripe: manifest: checksum %08x, stored %08x: %w", got, want, codec.ErrChecksum)
	}

	m := &Manifest{}
	sc := bufio.NewScanner(bytes.NewReader(data[:sumAt]))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	hdr, err := line()
	if err != nil || hdr != "CRFSM 1" {
		return nil, fmt.Errorf("stripe: manifest: bad magic %q", hdr)
	}
	var nchunks int
	for _, f := range []struct {
		format string
		dst    any
	}{
		{"object %s", &m.Object},
		{"size %d", &m.Size},
		{"chunksize %d", &m.ChunkSize},
		{"replicas %d", &m.Replicas},
		{"chunks %d", &nchunks},
	} {
		l, err := line()
		if err != nil {
			return nil, fmt.Errorf("stripe: manifest: truncated header: %w", err)
		}
		if _, err := fmt.Sscanf(l, f.format, f.dst); err != nil {
			return nil, fmt.Errorf("stripe: manifest: bad header line %q: %w", l, err)
		}
	}
	m.Chunks = make([]Chunk, 0, nchunks)
	for i := 0; i < nchunks; i++ {
		l, err := line()
		if err != nil {
			return nil, fmt.Errorf("stripe: manifest: truncated chunk table: %w", err)
		}
		var idx int
		var c Chunk
		var nodes string
		if _, err := fmt.Sscanf(l, "chunk %d %d %d %x %s", &idx, &c.Offset, &c.Length, &c.CRC, &nodes); err != nil || idx != i {
			return nil, fmt.Errorf("stripe: manifest: bad chunk line %q: %w", l, err)
		}
		c.Nodes = strings.Split(nodes, ",")
		m.Chunks = append(m.Chunks, c)
	}
	return m, nil
}
