package stripe

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestModelDifferential drives the striped store and a trivial
// in-memory model through the same random operation stream — puts,
// overwrites, deletes, node kills with repair — and demands byte
// identity after every operation and again after a "remount" (a fresh
// coordinator over the surviving nodes). This is the striped flavour of
// the repo's model-based differential tests: the model is obviously
// correct, so any divergence is a coordinator bug.
func TestModelDifferential(t *testing.T) {
	const (
		nNodes    = 5
		replicas  = 2
		chunkSize = 4 << 10
		ops       = 120
	)
	rng := rand.New(rand.NewSource(42))
	s, nodes := memCluster(nNodes, Config{ChunkSize: chunkSize, Replicas: replicas})
	model := map[string][]byte{}

	names := []string{"a.ckpt", "b.ckpt", "dir/c.ckpt", "d.ckpt"}
	verify := func(step string, st *Store) {
		t.Helper()
		for name, want := range model {
			var got bytes.Buffer
			n, err := st.Get(name, &got)
			if err != nil {
				t.Fatalf("%s: GET %s: %v", step, name, err)
			}
			if n != int64(len(want)) || !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("%s: GET %s: %d bytes differ from model's %d", step, name, n, len(want))
			}
		}
		listed, err := st.List()
		if err != nil {
			t.Fatalf("%s: LIST: %v", step, err)
		}
		wantNames := make([]string, 0, len(model))
		for n := range model {
			wantNames = append(wantNames, n)
		}
		sort.Strings(wantNames)
		if !reflect.DeepEqual(listed, wantNames) {
			t.Fatalf("%s: LIST = %v, model %v", step, listed, wantNames)
		}
	}

	for op := 0; op < ops; op++ {
		step := fmt.Sprintf("op %d", op)
		switch r := rng.Intn(10); {
		case r < 5: // put or overwrite
			name := names[rng.Intn(len(names))]
			body := make([]byte, rng.Intn(12*chunkSize))
			rng.Read(body)
			if err := s.Put(name, bytes.NewReader(body), int64(len(body))); err != nil {
				t.Fatalf("%s: PUT %s (%d bytes): %v", step, name, len(body), err)
			}
			model[name] = body
		case r < 7: // delete
			name := names[rng.Intn(len(names))]
			if err := s.Delete(name); err != nil {
				t.Fatalf("%s: DEL %s: %v", step, name, err)
			}
			delete(model, name)
		case r < 9: // kill a node, verify reads through the failure, revive, repair
			victim := nodes[rng.Intn(nNodes)]
			victim.SetDown(true)
			verify(step+" (node down)", s)
			victim.SetDown(false)
			if rep, err := s.Scrub(); err != nil {
				t.Fatalf("%s: scrub after revive: %v (%s)", step, err, rep)
			}
		default: // silent corruption of one random replica, then repair
			victim := nodes[rng.Intn(nNodes)]
			objs := victim.Objects()
			var chunks []string
			for _, o := range objs {
				if _, _, kind := ParseObjectName(o); kind == KindChunk {
					chunks = append(chunks, o)
				}
			}
			if len(chunks) > 0 {
				victim.Corrupt(chunks[rng.Intn(len(chunks))])
				verify(step+" (corrupt replica)", s)
				if rep, err := s.Scrub(); err != nil {
					t.Fatalf("%s: scrub after corruption: %v (%s)", step, err, rep)
				}
			}
		}
		verify(step, s)
	}

	// Remount: a brand-new coordinator over the same nodes must see the
	// identical store — all state lives in manifests, none in the
	// coordinator.
	ns := make([]Node, nNodes)
	for i := range nodes {
		ns[i] = nodes[i]
	}
	s2 := New(Config{ChunkSize: chunkSize, Replicas: replicas}, ns...)
	verify("remount", s2)

	// And a final scrub on the remounted store must find nothing wrong.
	rep, err := s2.Scrub()
	if err != nil {
		t.Fatalf("final scrub: %v (%s)", err, rep)
	}
	if rep.LostChunks != 0 || rep.LostManifests != 0 {
		t.Fatalf("final scrub reports loss: %s", rep)
	}
}
