// Package stripe implements the multi-node checkpoint store: a
// coordinator that splits each checkpoint into fixed-size chunks,
// places every chunk on k of N crfsd benefactor nodes, and records the
// layout in a per-checkpoint manifest that is fully replicated to every
// node. It is the stdchk-style scale-out layer over protocol v2: PUTs
// and restores stripe across nodes in parallel, scrub verifies every
// replica against its manifest fingerprint and repairs bad copies from
// good ones, and nodes can join, drain, and leave with only the minimal
// chunk movement rendezvous hashing implies.
package stripe

import (
	"hash/fnv"
	"sort"
)

// Place returns the k nodes that should hold key, chosen from nodes by
// highest-random-weight (rendezvous) hashing: every (node, key) pair
// gets a deterministic pseudo-random score and the top k scores win.
// The choice is stable — independent of the order nodes are passed in —
// and minimal under membership change: adding or removing one node
// moves only the keys whose top-k set actually changes, about k/N of
// them, with no central ring state to rebalance.
//
// If k >= len(nodes), every node is chosen. The result is ordered by
// descending score, so result[0] is the key's stable primary.
func Place(nodes []string, key string, k int) []string {
	if len(nodes) == 0 || k <= 0 {
		return nil
	}
	type scored struct {
		id    string
		score uint64
	}
	s := make([]scored, 0, len(nodes))
	for _, id := range nodes {
		s = append(s, scored{id: id, score: hrwScore(id, key)})
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			return s[i].score > s[j].score
		}
		return s[i].id < s[j].id // total order even on score collisions
	})
	if k > len(s) {
		k = len(s)
	}
	out := make([]string, k)
	for i := range out {
		out[i] = s[i].id
	}
	return out
}

// hrwScore is the rendezvous weight of key on node: FNV-1a over
// node\x00key, pushed through a 64-bit avalanche finalizer. The
// finalizer matters: raw FNV-1a changes in the last few input bytes
// (chunk indices differ only in trailing digits) barely reach the high
// bits that decide the score comparison, which would pin every chunk of
// an object to the same primary and serialize restores. Placement only
// needs determinism and spread, not cryptographic strength.
func hrwScore(node, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return fmix64(h.Sum64())
}

// fmix64 is the MurmurHash3 finalizer: every input bit avalanches to
// every output bit.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
