package stripe

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"crfs/internal/client"
	"crfs/internal/obs"
	"crfs/internal/vfs"
)

// Node is one storage benefactor the coordinator stripes over: a flat
// object namespace with whole-object put/get, idempotent delete, and a
// listing. The production implementation is a crfsd daemon reached over
// protocol v2 (ClientNode); tests use in-process nodes with fault
// injection.
type Node interface {
	// ID is the node's stable identity; placement hashes it, so it must
	// not change across reconnects (use the address, not the socket).
	ID() string
	Put(name string, r io.Reader, size int64) error
	Get(name string, w io.Writer) (int64, error)
	Delete(name string) error
	List() ([]string, error)
	Close() error
}

// ErrNotExist reports a missing object on a node, normalized across
// node implementations so the coordinator can tell absence (repairable)
// from transport failure (node unreachable).
var ErrNotExist = errors.New("stripe: object does not exist")

// ClientNode is a Node backed by a crfsd daemon over protocol v2. The
// underlying client redials and retries idempotent requests, so a
// bounced daemon looks like a slow request, not a dead node.
type ClientNode struct {
	addr string
	c    *client.Client
}

// DialNode connects to a crfsd daemon as a stripe node. redials bounds
// automatic reconnects for the node's lifetime (see client.Config).
func DialNode(addr string, redials int) (*ClientNode, error) {
	c, err := client.Dial(addr, client.Config{Redials: redials})
	if err != nil {
		return nil, fmt.Errorf("stripe: node %s: %w", addr, err)
	}
	return &ClientNode{addr: addr, c: c}, nil
}

func (n *ClientNode) ID() string { return n.addr }

func (n *ClientNode) Put(name string, r io.Reader, size int64) error {
	return n.c.Put(name, r, size)
}

func (n *ClientNode) Get(name string, w io.Writer) (int64, error) {
	nn, err := n.c.Get(name, w)
	// The wire protocol carries error strings, not types; this is the
	// normalization boundary for absence.
	var re *client.RemoteError
	if errors.As(err, &re) && strings.Contains(re.Msg, "not exist") {
		return nn, fmt.Errorf("stripe: node %s: GET %s: %w", n.addr, name, ErrNotExist)
	}
	return nn, err
}

func (n *ClientNode) Delete(name string) error { return n.c.Delete(name) }
func (n *ClientNode) List() ([]string, error)  { return n.c.List() }
func (n *ClientNode) Close() error             { return n.c.Close() }

// PutTraced implements the optional traced-node upgrade: the chunk
// span's trace ID rides the PUT verb line to the daemon.
func (n *ClientNode) PutTraced(name string, r io.Reader, size int64, ctx obs.SpanContext) error {
	return n.c.PutTraced(name, r, size, ctx)
}

// GetTraced is the traced variant of Get (see PutTraced).
func (n *ClientNode) GetTraced(name string, w io.Writer, ctx obs.SpanContext) (int64, error) {
	nn, err := n.c.GetTraced(name, w, ctx)
	var re *client.RemoteError
	if errors.As(err, &re) && strings.Contains(re.Msg, "not exist") {
		return nn, fmt.Errorf("stripe: node %s: GET %s: %w", n.addr, name, ErrNotExist)
	}
	return nn, err
}

// TraceDump fetches the daemon's span ring, filtered to one trace when
// trace is nonzero.
func (n *ClientNode) TraceDump(trace obs.TraceID) ([]obs.SpanRecord, error) {
	return n.c.TraceDump(trace)
}

// tracedPutter and tracedGetter are the optional upgrades a Node may
// implement to receive trace contexts; nodes without them are served
// untraced, so MemNode and older daemons keep working unchanged.
type tracedPutter interface {
	PutTraced(name string, r io.Reader, size int64, ctx obs.SpanContext) error
}

type tracedGetter interface {
	GetTraced(name string, w io.Writer, ctx obs.SpanContext) (int64, error)
}

// nodePut writes one object to a node, propagating ctx when the node
// supports it.
func nodePut(n Node, name string, r io.Reader, size int64, ctx obs.SpanContext) error {
	if ctx.Valid() {
		if tp, ok := n.(tracedPutter); ok {
			return tp.PutTraced(name, r, size, ctx)
		}
	}
	return n.Put(name, r, size)
}

// nodeGet reads one object from a node, propagating ctx when the node
// supports it.
func nodeGet(n Node, name string, w io.Writer, ctx obs.SpanContext) (int64, error) {
	if ctx.Valid() {
		if tg, ok := n.(tracedGetter); ok {
			return tg.GetTraced(name, w, ctx)
		}
	}
	return n.Get(name, w)
}

// MemNode is an in-memory Node for tests and hermetic benchmarks, with
// fault injection: it can be taken down (every call fails as if the
// daemon were unreachable) and individual objects can be silently
// corrupted to exercise fingerprint verification and repair.
type MemNode struct {
	id string

	mu      sync.Mutex
	objects map[string][]byte
	down    bool
	// delay is charged per byte on Get, for scaling measurements.
	readDelay time.Duration
	delayUnit int64
}

// NewMemNode returns an empty in-memory node.
func NewMemNode(id string) *MemNode {
	return &MemNode{id: id, objects: make(map[string][]byte)}
}

// WithReadDelay makes every Get sleep d per unit bytes read, modelling
// a disk- or network-bound benefactor. It returns the node for chaining.
func (n *MemNode) WithReadDelay(d time.Duration, unit int64) *MemNode {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.readDelay = d
	n.delayUnit = unit
	return n
}

// SetDown makes every subsequent call fail (true) or succeed (false),
// simulating a killed or partitioned daemon.
func (n *MemNode) SetDown(down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = down
}

// Corrupt flips a byte in the stored copy of name, returning whether
// the object existed. The corruption is silent — exactly what a scrub
// fingerprint check must catch.
func (n *MemNode) Corrupt(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.objects[name]
	if !ok || len(b) == 0 {
		return ok
	}
	b[len(b)/2] ^= 0xFF
	return true
}

// Objects returns a snapshot of the node's object names, sorted.
func (n *MemNode) Objects() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	names := make([]string, 0, len(n.objects))
	for name := range n.objects {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (n *MemNode) ID() string { return n.id }

func (n *MemNode) errIfDown() error {
	if n.down {
		return fmt.Errorf("stripe: node %s: connection refused: %w", n.id, vfs.ErrClosed)
	}
	return nil
}

func (n *MemNode) Put(name string, r io.Reader, size int64) error {
	// Consume the body before the fault check: a real daemon dying
	// mid-PUT still consumed the stream.
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if int64(len(data)) != size {
		return fmt.Errorf("stripe: node %s: PUT %s: body %d bytes, declared %d", n.id, name, len(data), size)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.errIfDown(); err != nil {
		return err
	}
	n.objects[name] = data
	return nil
}

func (n *MemNode) Get(name string, w io.Writer) (int64, error) {
	n.mu.Lock()
	if err := n.errIfDown(); err != nil {
		n.mu.Unlock()
		return 0, err
	}
	data, ok := n.objects[name]
	delay, unit := n.readDelay, n.delayUnit
	n.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("stripe: node %s: GET %s: %w", n.id, name, ErrNotExist)
	}
	if delay > 0 && unit > 0 {
		time.Sleep(delay * time.Duration((int64(len(data))+unit-1)/unit))
	}
	nn, err := w.Write(data)
	return int64(nn), err
}

func (n *MemNode) Delete(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.errIfDown(); err != nil {
		return err
	}
	delete(n.objects, name)
	return nil
}

func (n *MemNode) List() ([]string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.errIfDown(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(n.objects))
	for name := range n.objects {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (n *MemNode) Close() error { return nil }
