package stripe

import (
	"bytes"
	"fmt"
	"sort"

	"crfs/internal/codec"
	"crfs/internal/obs"
)

// Report summarizes one scrub pass.
type Report struct {
	Objects          int // manifests scrubbed
	ChunksVerified   int // replica copies that matched their fingerprint
	ChunksRepaired   int // bad or missing replicas rewritten from a good copy
	ManifestsFixed   int // manifest copies rewritten (missing or corrupt)
	StraysDeleted    int // unreferenced chunk replicas garbage-collected
	Orphans          int // chunks with no manifest anywhere (left alone)
	LostChunks       int // chunks with zero clean replicas — data loss
	LostManifests    int // objects with zero intact manifest copies
	UnreachableNodes int // nodes that answered nothing this pass
}

func (r Report) String() string {
	return fmt.Sprintf("objects=%d verified=%d repaired=%d manifests_fixed=%d strays=%d orphans=%d lost_chunks=%d lost_manifests=%d unreachable=%d",
		r.Objects, r.ChunksVerified, r.ChunksRepaired, r.ManifestsFixed, r.StraysDeleted,
		r.Orphans, r.LostChunks, r.LostManifests, r.UnreachableNodes)
}

// Scrub walks every object on every reachable node, verifies each
// chunk replica against its manifest fingerprint, rewrites bad or
// missing replicas from a clean copy, re-replicates manifests to nodes
// missing an intact copy, and garbage-collects chunk replicas no
// manifest references on that node (leftovers of rebalancing or failed
// repairs). Chunks whose object has no manifest anywhere are counted
// as orphans but left alone: they may belong to a Put that has not
// committed its manifest yet, so Scrub must not run concurrently with
// Put if orphan GC matters.
//
// The returned error is non-nil only for data loss (a chunk or
// manifest with zero clean copies); transient unreachability is
// reported in the Report instead.
func (s *Store) Scrub() (Report, error) {
	var rep Report
	var sp obs.Span
	if s.tracer.Enabled() {
		sp = s.tracer.Start("stripe.scrub")
		defer sp.End()
	}
	all, _ := s.members()
	if len(all) == 0 {
		return rep, ErrNoNodes
	}

	// Inventory every reachable node's namespace.
	listings := make(map[string][]string) // node id -> object names
	objects := make(map[string]bool)      // object names with a manifest somewhere
	for _, id := range sortedIDs(all) {
		names, err := all[id].List()
		if err != nil {
			rep.UnreachableNodes++
			continue
		}
		listings[id] = names
		for _, n := range names {
			if obj, _, kind := ParseObjectName(n); kind == KindManifest {
				objects[obj] = true
			}
		}
	}

	var firstLoss error
	manifests := make(map[string]*Manifest)
	for _, obj := range sortedKeys(objects) {
		m := s.scrubObject(all, listings, obj, &rep)
		if m == nil {
			rep.LostManifests++
			if firstLoss == nil {
				firstLoss = fmt.Errorf("stripe: scrub: no intact manifest copy for %s", obj)
			}
			continue
		}
		manifests[obj] = m
		rep.Objects++
	}

	// Stray GC: a chunk replica on a node its manifest does not place it
	// on is dead weight (rebalance leftovers, repair races).
	for id, names := range listings {
		for _, n := range names {
			obj, idx, kind := ParseObjectName(n)
			if kind != KindChunk {
				continue
			}
			m, ok := manifests[obj]
			if !ok {
				if !objects[obj] {
					rep.Orphans++
				}
				continue
			}
			if idx < len(m.Chunks) && contains(m.Chunks[idx].Nodes, id) {
				continue
			}
			if err := all[id].Delete(n); err == nil {
				rep.StraysDeleted++
				s.c.straysDeleted.Add(1)
			}
		}
	}

	if rep.LostChunks > 0 && firstLoss == nil {
		firstLoss = fmt.Errorf("stripe: scrub: %d chunk(s) with zero clean replicas: %w", rep.LostChunks, ErrChunkLost)
	}
	return rep, firstLoss
}

// scrubObject repairs one object: its manifest replication, then every
// chunk replica. Returns the canonical manifest, or nil if no copy
// decoded intact.
func (s *Store) scrubObject(all map[string]Node, listings map[string][]string, obj string, rep *Report) *Manifest {
	m, err := s.readManifest(all, obj)
	if err != nil {
		return nil
	}
	// Re-replicate the canonical manifest to every reachable node whose
	// copy is missing or does not decode to the same bytes.
	enc := m.Encode()
	mname := ManifestName(obj)
	for id := range listings {
		var buf bytes.Buffer
		if _, err := all[id].Get(mname, &buf); err == nil && bytes.Equal(buf.Bytes(), enc) {
			continue
		}
		if err := all[id].Put(mname, bytes.NewReader(enc), int64(len(enc))); err == nil {
			rep.ManifestsFixed++
			s.c.manifestsFixed.Add(1)
		}
	}

	for idx := range m.Chunks {
		c := m.Chunks[idx]
		cname := ChunkName(obj, idx)
		var good []byte
		var bad []string // reachable replicas needing a rewrite
		var unreachable int
		for _, id := range c.Nodes {
			node, ok := all[id]
			if !ok {
				unreachable++
				continue
			}
			if _, listed := listings[id]; !listed {
				unreachable++
				continue
			}
			var buf bytes.Buffer
			if _, err := node.Get(cname, &buf); err != nil {
				bad = append(bad, id)
				continue
			}
			if int64(buf.Len()) != c.Length || codec.Checksum(buf.Bytes()) != c.CRC {
				s.c.checksumFailed.Add(1)
				bad = append(bad, id)
				continue
			}
			rep.ChunksVerified++
			if good == nil {
				good = buf.Bytes()
			}
		}
		if good == nil {
			if unreachable == 0 {
				rep.LostChunks++
			}
			// With unreachable replicas the chunk may still be fine; do not
			// declare loss, and there is nothing to repair from.
			continue
		}
		for _, id := range bad {
			if err := all[id].Put(cname, bytes.NewReader(good), c.Length); err == nil {
				rep.ChunksRepaired++
				s.c.chunksRepaired.Add(1)
			}
		}
	}
	return m
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
