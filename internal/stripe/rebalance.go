package stripe

import (
	"bytes"
	"fmt"

	"crfs/internal/obs"
)

// RebalanceReport summarizes one rebalancing pass.
type RebalanceReport struct {
	Objects       int // manifests examined
	ChunksMoved   int // replicas copied to newly responsible nodes
	ChunksDropped int // replicas deleted from no-longer-responsible nodes
}

func (r RebalanceReport) String() string {
	return fmt.Sprintf("objects=%d moved=%d dropped=%d", r.Objects, r.ChunksMoved, r.ChunksDropped)
}

// Rebalance realigns every object's replica placement with the current
// membership: after a Join, each chunk whose rendezvous top-k now
// includes the new node gains a copy there; after a Drain, every chunk
// replica on the draining node moves to the node that takes its place.
// Rendezvous hashing keeps the moved set minimal — about k/N of chunks
// per membership change — with no ring state to migrate.
//
// Ordering is crash-safe per object: new replicas are copied first, the
// updated manifest then commits to every node, and only then are the
// old replicas dropped. A crash between steps leaves either the old
// manifest (pointing at still-present old replicas) or the new one
// (pointing at the already-copied new replicas) plus strays that the
// next Scrub collects.
func (s *Store) Rebalance() (RebalanceReport, error) {
	var rep RebalanceReport
	all, placeable := s.members()
	if len(placeable) == 0 {
		return rep, ErrNoNodes
	}

	objects, err := s.List()
	if err != nil {
		return rep, err
	}
	for _, obj := range objects {
		m, err := s.readManifest(all, obj)
		if err != nil {
			return rep, fmt.Errorf("stripe: rebalance %s: %w", obj, err)
		}
		k := m.Replicas
		if k > len(placeable) {
			k = len(placeable)
		}
		type drop struct {
			node  string
			chunk int
		}
		var drops []drop
		changed := false
		for idx := range m.Chunks {
			c := &m.Chunks[idx]
			cname := ChunkName(obj, idx)
			want := Place(placeable, cname, k)
			if equalStrings(want, c.Nodes) {
				continue
			}
			changed = true
			// Copy to newly responsible nodes from a verified replica.
			var buf []byte
			for _, id := range want {
				if contains(c.Nodes, id) {
					continue
				}
				if buf == nil {
					buf, err = s.fetchChunk(all, m, idx, obs.SpanContext{})
					if err != nil {
						return rep, fmt.Errorf("stripe: rebalance %s chunk %d: %w", obj, idx, err)
					}
				}
				node, ok := all[id]
				if !ok {
					return rep, fmt.Errorf("stripe: rebalance %s chunk %d: node %s detached", obj, idx, id)
				}
				release := s.slot(id)
				err := node.Put(cname, bytes.NewReader(buf), c.Length)
				release()
				if err != nil {
					return rep, fmt.Errorf("stripe: rebalance %s chunk %d to %s: %w", obj, idx, id, err)
				}
				rep.ChunksMoved++
				s.c.chunksMoved.Add(1)
			}
			for _, id := range c.Nodes {
				if !contains(want, id) {
					drops = append(drops, drop{node: id, chunk: idx})
				}
			}
			c.Nodes = want
		}
		if changed {
			if err := s.writeManifest(all, m); err != nil {
				return rep, err
			}
			for _, d := range drops {
				if node, ok := all[d.node]; ok {
					if err := node.Delete(ChunkName(obj, d.chunk)); err == nil {
						rep.ChunksDropped++
					}
				}
			}
		}
		rep.Objects++
	}
	return rep, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
