package stripe_test

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	crfs "crfs"
	"crfs/internal/memfs"
	"crfs/internal/obs"
	"crfs/internal/server"
	"crfs/internal/stripe"
)

// tracedNode is one in-process crfsd daemon with its own enabled span
// ring, reached over real TCP — the cross-process half of trace
// propagation.
type tracedNode struct {
	addr string
	fs   *crfs.FS
	srv  *server.Server
	node *stripe.ClientNode
}

func (n *tracedNode) stop() {
	n.node.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	n.srv.Shutdown(ctx)
	cancel()
	n.fs.Unmount()
}

func startTracedNode(t *testing.T) *tracedNode {
	t.Helper()
	tr := obs.New(4096)
	tr.SetEnabled(true)
	fs, err := crfs.Mount(memfs.New(), crfs.Options{ChunkSize: 1 << 16, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(fs, server.Config{Tracer: tr})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fs.Unmount()
		t.Fatal(err)
	}
	tr.SetProcess("crfsd:" + ln.Addr().String())
	go srv.Serve(ln)
	node, err := stripe.DialNode(ln.Addr().String(), 2)
	if err != nil {
		fs.Unmount()
		t.Fatal(err)
	}
	return &tracedNode{addr: ln.Addr().String(), fs: fs, srv: srv, node: node}
}

// collectTrace merges the client tracer's ring with every daemon's
// TRACE dump, filtered to one trace. Daemon request spans commit after
// the response is sent, so the expected span set is polled briefly.
func collectTrace(s *stripe.Store, ctr *obs.Tracer, trace obs.TraceID, want []string) []obs.SpanRecord {
	deadline := time.Now().Add(5 * time.Second)
	for {
		var recs []obs.SpanRecord
		for _, r := range ctr.Snapshot() {
			if r.Trace == trace {
				recs = append(recs, r)
			}
		}
		recs = append(recs, s.TraceDumps(trace)...)
		names := make(map[string]bool, len(recs))
		for _, r := range recs {
			names[r.Name] = true
		}
		missing := false
		for _, n := range want {
			if !names[n] {
				missing = true
			}
		}
		if !missing || time.Now().After(deadline) {
			return recs
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTracePropagation is the end-to-end observability contract: a
// striped checkpoint and restore against three real TCP daemons must
// each yield one trace whose spans cover the client coordinator, every
// participating daemon's request handling, and the daemons' core IO
// pipelines — stitched together solely by the trace IDs propagated on
// the wire.
func TestTracePropagation(t *testing.T) {
	var daemons []*tracedNode
	for i := 0; i < 3; i++ {
		d := startTracedNode(t)
		defer d.stop()
		daemons = append(daemons, d)
	}
	ctr := obs.New(4096)
	ctr.SetProcess("client")
	ctr.SetEnabled(true)
	s := stripe.New(stripe.Config{ChunkSize: 64 << 10, Replicas: 2, Tracer: ctr},
		daemons[0].node, daemons[1].node, daemons[2].node)

	payload := make([]byte, 512<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	psp := ctr.Start("client.put")
	putTrace := psp.Context().Trace
	if err := s.PutTraced("ckpt", bytes.NewReader(payload), int64(len(payload)), psp.Context()); err != nil {
		t.Fatal(err)
	}
	psp.End()

	gsp := ctr.Start("client.get")
	getTrace := gsp.Context().Trace
	var out bytes.Buffer
	if _, err := s.GetTraced("ckpt", &out, gsp.Context()); err != nil {
		t.Fatal(err)
	}
	gsp.End()
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("restored bytes differ from checkpoint")
	}

	checkTrace := func(op string, trace obs.TraceID, want []string) {
		t.Helper()
		recs := collectTrace(s, ctr, trace, want)
		procs := make(map[string]bool)
		names := make(map[string]bool)
		for _, r := range recs {
			if r.Trace != trace {
				t.Fatalf("%s: TraceDumps returned span %s from foreign trace %x (want %x)", op, r.Name, r.Trace, trace)
			}
			procs[r.Proc] = true
			names[r.Name] = true
		}
		for _, n := range want {
			if !names[n] {
				t.Errorf("%s: trace %x missing span %q (got %v)", op, trace, n, keys(names))
			}
		}
		if !procs["client"] {
			t.Errorf("%s: trace %x has no client spans", op, trace)
		}
		nd := 0
		for _, d := range daemons {
			if procs["crfsd:"+d.addr] {
				nd++
			}
		}
		// 8 chunks x 2 replicas over 3 nodes: placement is deterministic
		// for a fixed object name, and every node holds some replica.
		if nd != len(daemons) {
			t.Errorf("%s: trace %x covers %d of %d daemons (procs %v)", op, trace, nd, len(daemons), keys(procs))
		}
	}

	checkTrace("put", putTrace, []string{
		"client.put", "stripe.put", "stripe.chunk.put", "crfsd.PUT", "crfs.write", "crfs.chunk.write",
	})
	checkTrace("get", getTrace, []string{
		"client.get", "stripe.get", "stripe.chunk.get", "crfsd.GET", "crfs.read",
	})

	// The merged records must render as one loadable chrome trace with a
	// process lane per participant.
	recs := append(ctr.TraceSpans(putTrace), s.TraceDumps(putTrace)...)
	doc := obs.ChromeTrace(recs)
	if !bytes.Contains(doc, []byte("process_name")) || !bytes.Contains(doc, []byte("client")) {
		t.Fatalf("chrome trace missing process metadata: %.200s", doc)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
