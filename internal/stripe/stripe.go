package stripe

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"crfs/internal/codec"
	"crfs/internal/obs"
	"crfs/internal/server"
)

// DefaultChunkSize is the stripe unit. Large enough that per-chunk
// round-trip overhead amortizes, small enough that a modest checkpoint
// still spreads across every node.
const DefaultChunkSize = 4 << 20

// DefaultReplicas is the chunk replication factor.
const DefaultReplicas = 2

// DefaultPerNodeInFlight caps concurrent chunk transfers per node. The
// cap is what makes striping scale honestly: a coordinator over N nodes
// sustains N times the in-flight chunk transfers of a single node, no
// matter how many goroutines the caller throws at it.
const DefaultPerNodeInFlight = 4

// Config tunes a Store. The zero value gets defaults.
type Config struct {
	ChunkSize       int64
	Replicas        int
	PerNodeInFlight int
	// Tracer receives the coordinator's spans (put/get/scrub and their
	// per-chunk transfers). nil selects the process-wide obs.Default
	// tracer, which starts disabled.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.PerNodeInFlight <= 0 {
		c.PerNodeInFlight = DefaultPerNodeInFlight
	}
	return c
}

// ErrNoNodes reports an operation on a store with no placeable nodes.
var ErrNoNodes = errors.New("stripe: no nodes")

// ErrChunkLost reports a chunk none of whose replicas could produce
// fingerprint-clean bytes — data loss beyond what replication covers.
var ErrChunkLost = errors.New("stripe: chunk lost on all replicas")

// storeCounters aggregates coordinator activity. All fields are
// atomics; snapshot via Stats.
type storeCounters struct {
	chunksPut        atomic.Int64
	chunksGot        atomic.Int64
	bytesPut         atomic.Int64
	bytesGot         atomic.Int64
	replicaFallbacks atomic.Int64
	checksumFailed   atomic.Int64
	chunksRepaired   atomic.Int64
	manifestsFixed   atomic.Int64
	straysDeleted    atomic.Int64
	chunksMoved      atomic.Int64
}

// Stats is a point-in-time snapshot of coordinator counters.
type Stats struct {
	ChunksPut        int64 // chunk replicas written (k per logical chunk)
	ChunksGot        int64 // chunk reads served to restores
	BytesPut         int64 // payload bytes written across all replicas
	BytesGot         int64 // payload bytes delivered to restores
	ReplicaFallbacks int64 // restore reads that failed over to another replica
	ChecksumFailed   int64 // chunk reads whose fingerprint did not match
	ChunksRepaired   int64 // bad or missing replicas rewritten from good copies
	ManifestsFixed   int64 // manifest copies rewritten by scrub
	StraysDeleted    int64 // unreferenced objects garbage-collected
	ChunksMoved      int64 // replicas relocated by rebalancing
}

// Store is the striped-store coordinator. It is safe for concurrent
// use; node membership changes serialize against each other but not
// against data-path operations, which snapshot the member list.
type Store struct {
	cfg    Config
	tracer *obs.Tracer

	nmu      sync.Mutex // guards nodes/draining; never held across node IO
	nodes    map[string]Node
	draining map[string]bool
	slots    map[string]chan struct{} // per-node in-flight caps

	c storeCounters
}

// New returns a coordinator over the given nodes.
func New(cfg Config, nodes ...Node) *Store {
	s := &Store{
		cfg:      cfg.withDefaults(),
		tracer:   cfg.Tracer,
		nodes:    make(map[string]Node),
		draining: make(map[string]bool),
		slots:    make(map[string]chan struct{}),
	}
	if s.tracer == nil {
		s.tracer = obs.Default
	}
	for _, n := range nodes {
		s.Join(n)
	}
	return s
}

// Stats snapshots the coordinator counters.
func (s *Store) Stats() Stats {
	return Stats{
		ChunksPut:        s.c.chunksPut.Load(),
		ChunksGot:        s.c.chunksGot.Load(),
		BytesPut:         s.c.bytesPut.Load(),
		BytesGot:         s.c.bytesGot.Load(),
		ReplicaFallbacks: s.c.replicaFallbacks.Load(),
		ChecksumFailed:   s.c.checksumFailed.Load(),
		ChunksRepaired:   s.c.chunksRepaired.Load(),
		ManifestsFixed:   s.c.manifestsFixed.Load(),
		StraysDeleted:    s.c.straysDeleted.Load(),
		ChunksMoved:      s.c.chunksMoved.Load(),
	}
}

// Join adds a node to the membership. New placements include it
// immediately; existing objects migrate onto it only when Rebalance
// runs.
func (s *Store) Join(n Node) {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	s.nodes[n.ID()] = n
	delete(s.draining, n.ID())
	if _, ok := s.slots[n.ID()]; !ok {
		s.slots[n.ID()] = make(chan struct{}, s.cfg.PerNodeInFlight)
	}
}

// Drain marks a node as leaving: it stops receiving new placements but
// keeps serving reads. Run Rebalance to migrate its replicas away, then
// Remove it.
func (s *Store) Drain(id string) {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	if _, ok := s.nodes[id]; ok {
		s.draining[id] = true
	}
}

// Remove detaches a node from the membership without closing it. Data
// still on it is no longer reachable through the store; a prior
// Drain+Rebalance makes that set empty.
func (s *Store) Remove(id string) Node {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	n := s.nodes[id]
	delete(s.nodes, id)
	delete(s.draining, id)
	delete(s.slots, id)
	return n
}

// members snapshots the data-path view: all attached nodes, plus the
// IDs eligible for new placement (non-draining), sorted for determinism.
func (s *Store) members() (all map[string]Node, placeable []string) {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	all = make(map[string]Node, len(s.nodes))
	for id, n := range s.nodes {
		all[id] = n
		if !s.draining[id] {
			placeable = append(placeable, id)
		}
	}
	sort.Strings(placeable)
	return all, placeable
}

// slot acquires an in-flight slot on node id, returning the release.
// Unknown ids (node removed mid-operation) get a no-op slot; the IO
// will fail on its own terms.
func (s *Store) slot(id string) func() {
	s.nmu.Lock()
	ch, ok := s.slots[id]
	s.nmu.Unlock()
	if !ok {
		return func() {}
	}
	ch <- struct{}{}
	return func() { <-ch }
}

// Put stripes size bytes from r across the membership as one
// checkpoint object. Chunks upload with bounded parallelism (the
// per-node in-flight cap times the node count); the manifest commits
// last, to every node, so a failed Put never leaves a restorable-looking
// object — at worst unreferenced chunks that scrub collects.
func (s *Store) Put(name string, r io.Reader, size int64) error {
	return s.PutTraced(name, r, size, obs.SpanContext{})
}

// PutTraced is Put under a trace: the whole checkpoint gets a
// "stripe.put" span (joined to parent when valid, a fresh trace
// otherwise), every chunk upload gets a child span, and the trace ID
// rides the wire to each daemon, so one striped checkpoint renders as
// one cross-node timeline.
func (s *Store) PutTraced(name string, r io.Reader, size int64, parent obs.SpanContext) error {
	if err := server.ValidateName(name); err != nil {
		return fmt.Errorf("stripe: PUT: %w", err)
	}
	var sp obs.Span
	if s.tracer.Enabled() {
		sp = s.tracer.StartChild("stripe.put", parent)
		sp.Attr("object", name)
		sp.AttrInt("bytes", size)
		defer sp.End()
	}
	ctx := sp.Context()
	all, placeable := s.members()
	if len(placeable) == 0 {
		return ErrNoNodes
	}
	k := s.cfg.Replicas
	if k > len(placeable) {
		k = len(placeable)
	}

	nchunks := int((size + s.cfg.ChunkSize - 1) / s.cfg.ChunkSize)
	m := &Manifest{
		Object:    name,
		Size:      size,
		ChunkSize: s.cfg.ChunkSize,
		Replicas:  k,
		Chunks:    make([]Chunk, nchunks),
	}

	// The body must be read sequentially, but uploads overlap: each
	// chunk is buffered, fingerprinted, and handed to goroutines that
	// push its k replicas under the per-node caps. The window bounds
	// buffered memory to inflight × ChunkSize.
	inflight := len(placeable) * s.cfg.PerNodeInFlight
	window := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	var fmu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		fmu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		fmu.Unlock()
	}
	failed := func() bool {
		fmu.Lock()
		defer fmu.Unlock()
		return firstErr != nil
	}

	for idx := 0; idx < nchunks; idx++ {
		if failed() {
			break
		}
		length := s.cfg.ChunkSize
		if rem := size - int64(idx)*s.cfg.ChunkSize; rem < length {
			length = rem
		}
		buf := make([]byte, length)
		if _, err := io.ReadFull(r, buf); err != nil {
			setErr(fmt.Errorf("stripe: PUT %s: reading body chunk %d: %w", name, idx, err))
			break
		}
		chunk := Chunk{
			Offset: int64(idx) * s.cfg.ChunkSize,
			Length: length,
			CRC:    codec.Checksum(buf),
			Nodes:  Place(placeable, ChunkName(name, idx), k),
		}
		m.Chunks[idx] = chunk

		window <- struct{}{}
		wg.Add(1)
		go func(idx int, buf []byte, chunk Chunk) {
			defer wg.Done()
			defer func() { <-window }()
			cname := ChunkName(name, idx)
			for _, id := range chunk.Nodes {
				node := all[id]
				var csp obs.Span
				if s.tracer.Enabled() && ctx.Valid() {
					csp = s.tracer.StartChild("stripe.chunk.put", ctx)
					csp.AttrInt("idx", int64(idx))
					csp.Attr("node", id)
					csp.AttrInt("bytes", chunk.Length)
				}
				release := s.slot(id)
				err := nodePut(node, cname, bytes.NewReader(buf), chunk.Length, csp.Context())
				release()
				csp.End()
				if err != nil {
					setErr(fmt.Errorf("stripe: PUT %s: chunk %d to %s: %w", name, idx, id, err))
					return
				}
				s.c.chunksPut.Add(1)
				s.c.bytesPut.Add(chunk.Length)
			}
		}(idx, buf, chunk)
	}
	wg.Wait()
	if failed() {
		return firstErr
	}
	return s.writeManifest(all, m)
}

// writeManifest commits m to every attached node (draining included:
// reads route through drained nodes until rebalancing finishes).
func (s *Store) writeManifest(all map[string]Node, m *Manifest) error {
	enc := m.Encode()
	mname := ManifestName(m.Object)
	var firstErr error
	for _, id := range sortedIDs(all) {
		if err := all[id].Put(mname, bytes.NewReader(enc), int64(len(enc))); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("stripe: manifest %s to %s: %w", mname, id, err)
		}
	}
	return firstErr
}

// readManifest fetches and decodes the first intact manifest copy,
// preferring placement order of the manifest name so repeated reads hit
// the same copies.
func (s *Store) readManifest(all map[string]Node, name string) (*Manifest, error) {
	mname := ManifestName(name)
	var lastErr error = fmt.Errorf("stripe: GET %s: %w", mname, ErrNoNodes)
	for _, id := range sortedIDs(all) {
		var buf bytes.Buffer
		if _, err := all[id].Get(mname, &buf); err != nil {
			lastErr = err
			continue
		}
		m, err := DecodeManifest(buf.Bytes())
		if err != nil {
			lastErr = fmt.Errorf("stripe: manifest copy on %s: %w", id, err)
			continue
		}
		return m, nil
	}
	return nil, lastErr
}

// Get restores object name into w, striping reads across the replica
// holders with bounded parallelism and delivering chunks strictly in
// order. Every chunk is verified against its manifest fingerprint; a
// bad or unreachable replica fails over to the next, so the restore
// succeeds as long as one clean copy of every chunk survives.
func (s *Store) Get(name string, w io.Writer) (int64, error) {
	return s.GetTraced(name, w, obs.SpanContext{})
}

// GetTraced is Get under a trace (see PutTraced): a "stripe.get" span
// over the restore, a child span per chunk fetch, and wire propagation
// to the daemons serving the replicas.
func (s *Store) GetTraced(name string, w io.Writer, parent obs.SpanContext) (int64, error) {
	if err := server.ValidateName(name); err != nil {
		return 0, fmt.Errorf("stripe: GET: %w", err)
	}
	var sp obs.Span
	if s.tracer.Enabled() {
		sp = s.tracer.StartChild("stripe.get", parent)
		sp.Attr("object", name)
		defer sp.End()
	}
	ctx := sp.Context()
	all, _ := s.members()
	if len(all) == 0 {
		return 0, ErrNoNodes
	}
	m, err := s.readManifest(all, name)
	if err != nil {
		return 0, err
	}

	type result struct {
		buf []byte
		err error
	}
	results := make([]chan result, len(m.Chunks))
	for i := range results {
		results[i] = make(chan result, 1)
	}
	// One fetcher per chunk, gated by a global window and the per-node
	// caps; the writer drains results strictly in order.
	inflight := len(all) * s.cfg.PerNodeInFlight
	window := make(chan struct{}, inflight)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for idx := range m.Chunks {
			select {
			case window <- struct{}{}:
			case <-done:
				return
			}
			go func(idx int) {
				defer func() { <-window }()
				buf, err := s.fetchChunk(all, m, idx, ctx)
				select {
				case results[idx] <- result{buf: buf, err: err}:
				case <-done:
				}
			}(idx)
		}
	}()

	var n int64
	for idx := range m.Chunks {
		res := <-results[idx]
		if res.err != nil {
			return n, res.err
		}
		wn, werr := w.Write(res.buf)
		n += int64(wn)
		if werr != nil {
			return n, fmt.Errorf("stripe: GET %s: writing chunk %d: %w", name, idx, werr)
		}
		s.c.chunksGot.Add(1)
		s.c.bytesGot.Add(int64(wn))
	}
	if n != m.Size {
		return n, fmt.Errorf("stripe: GET %s: delivered %d bytes, manifest says %d", name, n, m.Size)
	}
	return n, nil
}

// fetchChunk returns fingerprint-verified bytes for chunk idx, trying
// replicas in placement order.
func (s *Store) fetchChunk(all map[string]Node, m *Manifest, idx int, ctx obs.SpanContext) ([]byte, error) {
	c := m.Chunks[idx]
	cname := ChunkName(m.Object, idx)
	var lastErr error
	for tries, id := range c.Nodes {
		node, ok := all[id]
		if !ok {
			lastErr = fmt.Errorf("stripe: GET %s: replica node %s detached", cname, id)
			continue
		}
		var csp obs.Span
		if s.tracer.Enabled() && ctx.Valid() {
			csp = s.tracer.StartChild("stripe.chunk.get", ctx)
			csp.AttrInt("idx", int64(idx))
			csp.Attr("node", id)
			csp.AttrInt("bytes", c.Length)
		}
		var buf bytes.Buffer
		buf.Grow(int(c.Length))
		release := s.slot(id)
		_, err := nodeGet(node, cname, &buf, csp.Context())
		release()
		csp.End()
		if err != nil {
			lastErr = err
			if tries < len(c.Nodes)-1 {
				s.c.replicaFallbacks.Add(1)
			}
			continue
		}
		if int64(buf.Len()) != c.Length || codec.Checksum(buf.Bytes()) != c.CRC {
			s.c.checksumFailed.Add(1)
			lastErr = fmt.Errorf("stripe: GET %s on %s: %d bytes, fingerprint mismatch: %w",
				cname, id, buf.Len(), codec.ErrChecksum)
			if tries < len(c.Nodes)-1 {
				s.c.replicaFallbacks.Add(1)
			}
			continue
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("%w: %s: last error: %w", ErrChunkLost, cname, lastErr)
}

// Delete removes object name: every chunk replica the manifest
// references, then every manifest copy. Missing pieces are fine — the
// verb is idempotent end to end.
func (s *Store) Delete(name string) error {
	all, _ := s.members()
	if len(all) == 0 {
		return ErrNoNodes
	}
	m, err := s.readManifest(all, name)
	if err == nil {
		for idx, c := range m.Chunks {
			cname := ChunkName(name, idx)
			for _, id := range c.Nodes {
				if node, ok := all[id]; ok {
					if derr := node.Delete(cname); derr != nil && err == nil {
						err = derr
					}
				}
			}
		}
	} else if errors.Is(err, ErrNotExist) {
		err = nil
	}
	mname := ManifestName(name)
	for _, id := range sortedIDs(all) {
		if derr := all[id].Delete(mname); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// List returns the store's object names — the union of manifests
// visible on reachable nodes — sorted.
func (s *Store) List() ([]string, error) {
	all, _ := s.members()
	seen := make(map[string]bool)
	var reachable int
	for _, id := range sortedIDs(all) {
		names, err := all[id].List()
		if err != nil {
			continue
		}
		reachable++
		for _, n := range names {
			if obj, _, kind := ParseObjectName(n); kind == KindManifest {
				seen[obj] = true
			}
		}
	}
	if reachable == 0 && len(all) > 0 {
		return nil, fmt.Errorf("stripe: LIST: %w", ErrNoNodes)
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// TraceDumps collects the span rings of every node that supports trace
// dumping (crfsd daemons with trace=1), filtered to one trace when
// trace is nonzero, merged into one record list. Nodes that cannot
// dump — or fail to — are skipped: a trace is a diagnostic, not a
// durability contract.
func (s *Store) TraceDumps(trace obs.TraceID) []obs.SpanRecord {
	all, _ := s.members()
	var recs []obs.SpanRecord
	for _, id := range sortedIDs(all) {
		td, ok := all[id].(interface {
			TraceDump(obs.TraceID) ([]obs.SpanRecord, error)
		})
		if !ok {
			continue
		}
		if r, err := td.TraceDump(trace); err == nil {
			recs = append(recs, r...)
		}
	}
	return recs
}

func sortedIDs(all map[string]Node) []string {
	ids := make([]string, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
