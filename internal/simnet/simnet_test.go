package simnet

import (
	"testing"

	"crfs/internal/des"
)

func TestTransferTime(t *testing.T) {
	env := des.New()
	l := NewLink(env, 100<<20, des.Millisecond) // 100 MB/s, 1 ms latency
	var took des.Duration
	env.Spawn("s", func(p *des.Proc) {
		t0 := p.Now()
		l.Transfer(p, 100<<20) // 1 second of serialization
		took = p.Now() - t0
	})
	env.Run()
	env.Shutdown()
	want := des.Second + des.Millisecond
	if took != want {
		t.Fatalf("transfer took %d, want %d", took, want)
	}
	if l.BytesCarried() != 100<<20 || l.Messages() != 1 {
		t.Errorf("counters: %d bytes, %d msgs", l.BytesCarried(), l.Messages())
	}
}

func TestSerializationShared(t *testing.T) {
	env := des.New()
	l := NewLink(env, 100<<20, 0)
	var done []des.Time
	for i := 0; i < 2; i++ {
		env.Spawn("s", func(p *des.Proc) {
			l.Transfer(p, 100<<20)
			done = append(done, p.Now())
		})
	}
	env.Run()
	env.Shutdown()
	if len(done) != 2 || done[0] != des.Second || done[1] != 2*des.Second {
		t.Fatalf("done = %v, want serialization [1s, 2s]", done)
	}
}

func TestZeroBytePaysLatency(t *testing.T) {
	env := des.New()
	l := NewLink(env, 100<<20, 5*des.Microsecond)
	var took des.Duration
	env.Spawn("s", func(p *des.Proc) {
		t0 := p.Now()
		l.Transfer(p, 0)
		took = p.Now() - t0
	})
	env.Run()
	env.Shutdown()
	if took != 5*des.Microsecond {
		t.Fatalf("zero-byte transfer took %d", took)
	}
}
