// Package simnet models network links in virtual time: a link has a
// propagation latency and a serialization bandwidth shared FIFO among
// transfers. The cluster model gives each node an InfiniBand HCA link and
// the NFS path an IPoIB link, matching the paper's testbed (§V-A).
package simnet

import "crfs/internal/des"

// Link is a point-to-point or host link with bandwidth shared one
// transfer at a time (store-and-forward serialization) plus a fixed
// per-message latency.
type Link struct {
	env *des.Env
	// Bps is the serialization bandwidth in bytes/second.
	Bps int64
	// Latency is the per-message propagation + stack traversal delay.
	Latency des.Duration
	res     *des.Resource

	bytes int64
	msgs  int64
}

// NewLink returns a link attached to env.
func NewLink(env *des.Env, bps int64, latency des.Duration) *Link {
	return &Link{env: env, Bps: bps, Latency: latency, res: des.NewResource(env, 1)}
}

// Transfer blocks the caller while n bytes serialize onto the link and
// propagate. Zero-byte messages still pay latency.
func (l *Link) Transfer(p *des.Proc, n int64) {
	l.res.Acquire(p, 1)
	ser := des.Duration(float64(n) / float64(l.Bps) * float64(des.Second))
	p.Wait(ser)
	l.res.Release(1)
	p.Wait(l.Latency)
	l.bytes += n
	l.msgs++
}

// BytesCarried returns the total payload transferred.
func (l *Link) BytesCarried() int64 { return l.bytes }

// Messages returns the number of transfers.
func (l *Link) Messages() int64 { return l.msgs }

// Presets matching the paper's testbed.
const (
	// IBDDRBps approximates Mellanox DDR InfiniBand effective payload
	// bandwidth (~1.5 GB/s).
	IBDDRBps = 1500 << 20
	// IBLatency is the per-message InfiniBand latency including verbs
	// stack traversal.
	IBLatency = 8 * des.Microsecond
	// IPoIBBps approximates IP-over-InfiniBand effective bandwidth
	// (~400 MB/s in the DDR era).
	IPoIBBps = 400 << 20
	// IPoIBLatency is the per-message latency of the IPoIB stack.
	IPoIBLatency = 35 * des.Microsecond
	// GigEBps is 1 GigE payload bandwidth (~110 MB/s).
	GigEBps = 110 << 20
	// GigELatency is typical GigE + TCP latency.
	GigELatency = 60 * des.Microsecond
)
