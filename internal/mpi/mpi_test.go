package mpi

import (
	"math"
	"testing"

	"crfs/internal/workload"
)

// TestImageSizesMatchTableII checks the image-size model against the
// paper's Table II within 10%.
func TestImageSizesMatchTableII(t *testing.T) {
	paper := map[string]map[workload.Class]float64{ // image MB at 128 procs
		"MVAPICH2": {workload.ClassB: 7.1, workload.ClassC: 15.1, workload.ClassD: 106.7},
		"OpenMPI":  {workload.ClassB: 7.1, workload.ClassC: 13.7, workload.ClassD: 108.3},
		"MPICH2":   {workload.ClassB: 3.9, workload.ClassC: 10.7, workload.ClassD: 103.6},
	}
	for _, stack := range Stacks() {
		for class, want := range paper[stack.Name] {
			img, err := stack.ImageBytes(class, 128)
			if err != nil {
				t.Fatal(err)
			}
			got := float64(img) / (1 << 20)
			if math.Abs(got-want)/want > 0.12 {
				t.Errorf("%s LU.%s.128: image %.1f MB, paper %.1f MB", stack.Name, class, got, want)
			}
		}
	}
}

func TestIBCarriesMoreThanTCP(t *testing.T) {
	ib, _ := MVAPICH2.ImageBytes(workload.ClassB, 128)
	tcp, _ := MPICH2.ImageBytes(workload.ClassB, 128)
	if ib <= tcp {
		t.Errorf("IB image (%d) should exceed TCP image (%d)", ib, tcp)
	}
}

func TestTotalIsImageTimesProcs(t *testing.T) {
	img, _ := MVAPICH2.ImageBytes(workload.ClassC, 128)
	tot, _ := MVAPICH2.TotalCheckpointBytes(workload.ClassC, 128)
	if tot != img*128 {
		t.Errorf("total %d != image %d x 128", tot, img)
	}
}

func TestOpenMPILustreQuirk(t *testing.T) {
	if !OpenMPI.CheckpointFails("lustre", workload.ClassC, false) {
		t.Error("OpenMPI native Lustre class C should fail (paper Fig. 8)")
	}
	if OpenMPI.CheckpointFails("lustre", workload.ClassC, true) {
		t.Error("OpenMPI over CRFS must not fail")
	}
	if OpenMPI.CheckpointFails("ext3", workload.ClassC, false) {
		t.Error("OpenMPI native ext3 must not fail")
	}
	if MVAPICH2.CheckpointFails("lustre", workload.ClassC, false) {
		t.Error("MVAPICH2 must not fail anywhere")
	}
}
