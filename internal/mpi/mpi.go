// Package mpi models the three C/R-capable MPI stacks of the paper's
// evaluation — MVAPICH2 1.6rc3, MPICH2 1.3.2p1, and OpenMPI 1.5.1 — at
// the level that matters for checkpoint IO (§II-C, §V):
//
//   - the per-process image-size contribution of the runtime (InfiniBand
//     transports pin several MB of registered buffers and QP state per
//     process, TCP transports far less — Table II),
//   - the coordinated checkpoint protocol (suspend channels → dump every
//     process with BLCR → barrier → resume), and
//   - observed quirks: the paper could not checkpoint OpenMPI over native
//     Lustre at class C at all ("the checkpoint in OpenMPI always failed
//     for these conditions", Fig. 8b), which the model reproduces.
package mpi

import (
	"crfs/internal/workload"
)

// Transport is an MPI communication substrate.
type Transport string

// Transports used in the paper.
const (
	InfiniBand Transport = "IB"
	TCP        Transport = "TCP"
)

// Stack models one MPI implementation.
type Stack struct {
	// Name is the implementation name as used in the paper.
	Name string
	// Transport tags the communication substrate (Table II's -IB/-TCP).
	Transport Transport
	// RuntimeOverhead is the per-process image contribution of the MPI
	// runtime: communication buffers, connection state, registered
	// memory. Calibrated against Table II.
	RuntimeOverhead int64
	// PerProcConnBytes grows the footprint with job size (connection
	// state per peer).
	PerProcConnBytes int64
	// nativeLustreClassCFails reproduces the paper's OpenMPI failure.
	nativeLustreClassCFails bool
}

// The three evaluated stacks.
var (
	MVAPICH2 = Stack{
		Name: "MVAPICH2", Transport: InfiniBand,
		RuntimeOverhead: 4400 << 10, PerProcConnBytes: 4 << 10,
	}
	OpenMPI = Stack{
		Name: "OpenMPI", Transport: InfiniBand,
		RuntimeOverhead:         4300 << 10,
		PerProcConnBytes:        4 << 10,
		nativeLustreClassCFails: true,
	}
	MPICH2 = Stack{
		Name: "MPICH2", Transport: TCP,
		RuntimeOverhead: 1300 << 10, PerProcConnBytes: 1 << 10,
	}
)

// Stacks lists the evaluated stacks in the paper's presentation order.
func Stacks() []Stack { return []Stack{MVAPICH2, MPICH2, OpenMPI} }

// ImageBytes returns the per-process checkpoint image size for a stack
// running the given class over nprocs processes (Table II's "Process
// Image Size").
func (s Stack) ImageBytes(class workload.Class, nprocs int) (int64, error) {
	app, err := workload.LUProcBytes(class, nprocs)
	if err != nil {
		return 0, err
	}
	return app + s.RuntimeOverhead + s.PerProcConnBytes*int64(nprocs-1), nil
}

// TotalCheckpointBytes returns the job-wide checkpoint size (Table II's
// "Total Checkpoint Size").
func (s Stack) TotalCheckpointBytes(class workload.Class, nprocs int) (int64, error) {
	img, err := s.ImageBytes(class, nprocs)
	if err != nil {
		return 0, err
	}
	return img * int64(nprocs), nil
}

// CheckpointFails reports whether this stack's checkpoint is known to fail
// for the given backend/mode combination (the paper's Fig. 8 hole).
func (s Stack) CheckpointFails(backend string, class workload.Class, useCRFS bool) bool {
	return s.nativeLustreClassCFails && backend == "lustre" && class == workload.ClassC && !useCRFS
}
