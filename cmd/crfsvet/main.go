// Command crfsvet mechanically enforces the DESIGN.md concurrency and
// integrity invariants over this module: lock ordering (lockorder),
// lock-free counters (atomicstats), sentinel-error discipline
// (errwrap), checksum-verified decode paths (decodeverify), and the
// IO-worker priority model (workerqueue).
//
// Standalone usage (the CI path):
//
//	go run ./cmd/crfsvet ./...          # whole module, tests included
//	go run ./cmd/crfsvet ./internal/core
//	go run ./cmd/crfsvet -analyzers lockorder,errwrap ./...
//
// It can also serve as a vet tool over export data:
//
//	go build -o /tmp/crfsvet ./cmd/crfsvet
//	go vet -vettool=/tmp/crfsvet ./...
//
// Exit codes are fsck-style, matching crfsck: 0 clean, 2 findings,
// 1 operational error. Waived findings (//crfsvet:ignore with a reason)
// do not fail the run but are always counted and printed — a waiver is
// visible, never silent.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"crfs/internal/analysis"
	"crfs/internal/analysis/suite"
)

const (
	exitClean    = 0
	exitError    = 1
	exitFindings = 2
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet's tool protocol probes -V=full and -flags before handing
	// over a unit config; intercept those before normal flag parsing.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			fmt.Printf("crfsvet version v1.0.0\n")
			return exitClean
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return exitClean
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0])
		}
	}

	fs := flag.NewFlagSet("crfsvet", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list analyzers and exit")
		noTests   = fs.Bool("notests", false, "exclude _test.go files from analysis")
		analyzers = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: crfsvet [flags] [packages]\n\npackages default to ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	selected := suite.ByName(splitNames(*analyzers))
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "crfsvet: no analyzer matches -analyzers=%s\n", *analyzers)
		return exitError
	}
	if *list {
		for _, a := range suite.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "crfsvet:", err)
		return exitError
	}
	paths, err := resolvePatterns(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "crfsvet:", err)
		return exitError
	}

	var units []*analysis.Package
	for _, p := range paths {
		u, err := loader.Load(p, !*noTests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crfsvet:", err)
			return exitError
		}
		units = append(units, u...)
	}

	res, err := analysis.RunAnalyzers(units, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crfsvet:", err)
		return exitError
	}
	return report(res, len(paths))
}

func report(res *analysis.Result, pkgs int) int {
	findings := res.Findings()
	suppressed := res.Suppressed()
	for _, d := range findings {
		fmt.Printf("%s\n", d)
	}
	for _, d := range suppressed {
		fmt.Printf("%s: [%s] waived: %s (reason: %s)\n", d.Pos, d.Analyzer, d.Message, d.Reason)
	}
	fmt.Printf("crfsvet: %d packages, %d findings, %d waived (//crfsvet:ignore)\n",
		pkgs, len(findings), len(suppressed))
	if len(findings) > 0 {
		return exitFindings
	}
	return exitClean
}

func splitNames(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// resolvePatterns maps command-line package patterns to module import
// paths: "./..." (or no argument) is the whole module; "./x/y" is the
// package at that directory; a bare path is taken as a module import
// path, with the module prefix supplied if missing.
func resolvePatterns(loader *analysis.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		return loader.ModulePackages()
	}
	seen := make(map[string]bool)
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.ModulePackages()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		case strings.HasPrefix(arg, "./") || arg == ".":
			abs, err := filepath.Abs(arg)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(loader.ModuleRoot, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("%s is outside module %s", arg, loader.ModulePath)
			}
			if rel == "." {
				add(loader.ModulePath)
			} else {
				add(loader.ModulePath + "/" + filepath.ToSlash(rel))
			}
		case strings.HasPrefix(arg, loader.ModulePath+"/") || arg == loader.ModulePath:
			add(arg)
		default:
			add(loader.ModulePath + "/" + arg)
		}
	}
	return paths, nil
}
