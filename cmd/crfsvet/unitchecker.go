package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"crfs/internal/analysis"
	"crfs/internal/analysis/suite"
)

// vetConfig is the unit-analysis configuration cmd/go writes for vet
// tools (the x/tools unitchecker protocol): one type-checkable unit plus
// export-data locations for everything it imports.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one vet unit described by a .cfg file. Facts are not
// used by this suite, so the vetx output is written empty — but it must
// be written, or cmd/go treats the run as failed.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crfsvet:", err)
		return exitError
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "crfsvet: parsing %s: %v\n", cfgPath, err)
		return exitError
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "crfsvet:", err)
			return exitError
		}
	}
	if cfg.VetxOnly {
		return exitClean
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return exitClean
			}
			fmt.Fprintln(os.Stderr, "crfsvet:", err)
			return exitError
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp, Error: func(error) {}}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return exitClean
		}
		fmt.Fprintln(os.Stderr, "crfsvet:", err)
		return exitError
	}

	pkg := &analysis.Package{
		Path: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: files, Types: tpkg, Info: info,
	}
	res, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, suite.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crfsvet:", err)
		return exitError
	}
	findings := res.Findings()
	for _, d := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if n := len(res.Suppressed()); n > 0 {
		fmt.Fprintf(os.Stderr, "crfsvet: %s: %d waived (//crfsvet:ignore)\n", cfg.ImportPath, n)
	}
	if len(findings) > 0 {
		return exitFindings
	}
	return exitClean
}
