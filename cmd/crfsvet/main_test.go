package main

import (
	"os"
	"path/filepath"
	"testing"
)

// chdirModuleRoot moves the test into the module root (two levels up
// from cmd/crfsvet) so ./-relative package patterns resolve the same way
// they do for a developer running the tool by hand.
func chdirModuleRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
}

// TestNegativeFixturesExitNonZero is the acceptance check that each
// analyzer's seeded-violation fixture fails the run: crfsvet must exit
// with the findings code, not silently pass, for every analyzer in the
// suite.
func TestNegativeFixturesExitNonZero(t *testing.T) {
	chdirModuleRoot(t)
	fixtures := map[string]string{
		"lockorder":    "./internal/analysis/lockorder/testdata/src/a",
		"atomicstats":  "./internal/analysis/atomicstats/testdata/src/a",
		"errwrap":      "./internal/analysis/errwrap/testdata/src/a",
		"decodeverify": "./internal/analysis/decodeverify/testdata/src/a",
		"workerqueue":  "./internal/analysis/workerqueue/testdata/src/core",
	}
	for name, dir := range fixtures {
		t.Run(name, func(t *testing.T) {
			if got := run([]string{"-analyzers", name, dir}); got != exitFindings {
				t.Fatalf("crfsvet -analyzers %s %s: exit %d, want %d (findings)", name, dir, got, exitFindings)
			}
		})
	}
}

// TestWaivedFindingsExitClean: a package whose only findings carry
// //crfsvet:ignore directives passes (exit 0) — waivers suppress the
// failure, not the report.
func TestWaivedFindingsExitClean(t *testing.T) {
	chdirModuleRoot(t)
	dir := "./internal/analysis/lockorder/testdata/src/truncopen"
	if got := run([]string{"-analyzers", "lockorder", dir}); got != exitClean {
		t.Fatalf("crfsvet %s: exit %d, want %d (clean: finding is waived)", dir, got, exitClean)
	}
}

// TestVetProtocolProbes covers the two probe invocations cmd/go makes
// before using a vet tool.
func TestVetProtocolProbes(t *testing.T) {
	if got := run([]string{"-V=full"}); got != exitClean {
		t.Fatalf("-V=full: exit %d", got)
	}
	if got := run([]string{"-flags"}); got != exitClean {
		t.Fatalf("-flags: exit %d", got)
	}
}

func TestListAndBadAnalyzer(t *testing.T) {
	if got := run([]string{"-list"}); got != exitClean {
		t.Fatalf("-list: exit %d", got)
	}
	if got := run([]string{"-analyzers", "nosuch"}); got != exitError {
		t.Fatalf("-analyzers nosuch: exit %d, want %d", got, exitError)
	}
}
