package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	crfs "crfs"
	"crfs/internal/client"
	"crfs/internal/memfs"
	"crfs/internal/server"
)

// serverBench drives a crfsd daemon with nclients concurrent protocol-v2
// clients over persistent connections, each running ops self-verifying
// PUT/GET operations against its own object names. With addr "inproc"
// it spins up an in-process server over an in-memory mount, so the mode
// doubles as a no-setup stress run.
func serverBench(emit *emitter, addr string, nclients, ops int, objSize int64, putFrac float64) error {
	var cleanup func() error
	if addr == "inproc" {
		var err error
		addr, cleanup, err = startInproc()
		if err != nil {
			return err
		}
		defer cleanup()
	}

	var (
		puts, gets, errs atomic.Int64
		bytesMoved       atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	firstErr := make(chan error, nclients)
	for ci := 0; ci < nclients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Config{IOTimeout: time.Minute})
			if err != nil {
				errs.Add(1)
				firstErr <- fmt.Errorf("client %d: dial: %w", ci, err)
				return
			}
			defer c.Close()
			versions := make(map[string]int)
			for op := 0; op < ops; op++ {
				name := fmt.Sprintf("bench/c%d/obj%d", ci, op%4)
				// Interleave: the first op on a name must be a PUT; after
				// that, putFrac of the ops overwrite, the rest read back.
				doPut := versions[name] == 0 || frac(ci*ops+op) < putFrac
				if doPut {
					versions[name]++
					body := payload(name, versions[name], objSize)
					if err := c.Put(name, bytes.NewReader(body), objSize); err != nil {
						errs.Add(1)
						firstErr <- fmt.Errorf("client %d: PUT %s: %w", ci, name, err)
						return
					}
					puts.Add(1)
					bytesMoved.Add(objSize)
					continue
				}
				var got bytes.Buffer
				if _, err := c.Get(name, &got); err != nil {
					errs.Add(1)
					firstErr <- fmt.Errorf("client %d: GET %s: %w", ci, name, err)
					return
				}
				// Another run of this benchmark could be writing too, but
				// within one client the name is private: the content must be
				// exactly the last version this client committed.
				if !bytes.Equal(got.Bytes(), payload(name, versions[name], objSize)) {
					errs.Add(1)
					firstErr <- fmt.Errorf("client %d: GET %s: payload mismatch (%d bytes)", ci, name, got.Len())
					return
				}
				gets.Add(1)
				bytesMoved.Add(objSize)
			}
		}(ci)
	}
	wg.Wait()
	close(firstErr)
	el := time.Since(start).Seconds()
	totalOps := puts.Load() + gets.Load()
	res := struct {
		Scenario string  `json:"scenario"`
		Clients  int     `json:"clients"`
		Ops      int64   `json:"ops"`
		Puts     int64   `json:"puts"`
		Gets     int64   `json:"gets"`
		Errors   int64   `json:"errors"`
		Bytes    int64   `json:"bytes"`
		Seconds  float64 `json:"seconds"`
		OpsPerS  float64 `json:"ops_per_s"`
		MBPerS   float64 `json:"mb_per_s"`
	}{
		Scenario: "server-load", Clients: nclients,
		Ops: totalOps, Puts: puts.Load(), Gets: gets.Load(), Errors: errs.Load(),
		Bytes: bytesMoved.Load(), Seconds: el,
		OpsPerS: float64(totalOps) / el, MBPerS: float64(bytesMoved.Load()) / el / (1 << 20),
	}
	emit.scenario(res,
		fmt.Sprintf("server load: %d clients x %d ops, obj %d bytes", nclients, ops, objSize),
		fmt.Sprintf("  %d puts, %d gets, %d errors in %.3fs (%.0f ops/s, %.1f MB/s)",
			res.Puts, res.Gets, res.Errors, el, res.OpsPerS, res.MBPerS))
	if err, ok := <-firstErr; ok {
		return err
	}
	return nil
}

// stallCheck verifies the daemon reaps a stalled client: it starts a v1
// PUT, sends half the body, and goes silent. A healthy server hits its
// read deadline and closes the connection well before timeout; a
// regressed server pins the goroutine (and the staged PUT) forever.
func stallCheck(emit *emitter, addr string, timeout time.Duration) error {
	var cleanup func() error
	if addr == "inproc" {
		var err error
		addr, cleanup, err = startInproc()
		if err != nil {
			return err
		}
		defer cleanup()
	}
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	const size = 1 << 20
	start := time.Now()
	if _, err := fmt.Fprintf(nc, "PUT bench/stall %d\n", size); err != nil {
		return err
	}
	if _, err := nc.Write(make([]byte, size/2)); err != nil {
		return err
	}
	// Go silent mid-body and wait for the server to hang up on us: it
	// writes an ERR response for the aborted PUT, then closes. Reading
	// until error observes the close; only our own deadline expiring
	// (a timeout error) means the server left the connection pinned.
	nc.SetReadDeadline(time.Now().Add(timeout))
	var rerr error
	for rerr == nil {
		_, rerr = nc.Read(make([]byte, 256))
	}
	el := time.Since(start)
	ne, isNetErr := rerr.(net.Error)
	reaped := !(isNetErr && ne.Timeout())
	res := struct {
		Scenario string  `json:"scenario"`
		Reaped   bool    `json:"reaped"`
		Seconds  float64 `json:"seconds"`
	}{Scenario: "server-stall", Reaped: reaped, Seconds: el.Seconds()}
	emit.scenario(res, fmt.Sprintf("stalled client: reaped=%v after %.1fs", reaped, el.Seconds()))
	if !reaped {
		return fmt.Errorf("server did not reap the stalled connection within %v", timeout)
	}
	return nil
}

// startInproc mounts an in-memory CRFS and serves it on a loopback
// listener, returning the address and a cleanup.
func startInproc() (string, func() error, error) {
	fs, err := crfs.Mount(memfs.New(), crfs.Options{ChunkSize: 1 << 20})
	if err != nil {
		return "", nil, err
	}
	srv := server.New(fs, server.Config{
		ReadTimeout: 2 * time.Second, WriteTimeout: 10 * time.Second, IdleTimeout: 30 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fs.Unmount()
		return "", nil, err
	}
	go srv.Serve(ln)
	cleanup := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		return fs.Unmount()
	}
	return ln.Addr().String(), cleanup, nil
}

// payload builds the deterministic self-verifying body for one object
// version: an xorshift stream seeded from the name and version, so any
// byte-level corruption or cross-version mixup fails the compare.
func payload(name string, version int, size int64) []byte {
	seed := uint64(version)*1099511628211 + 14695981039346656037
	for _, b := range []byte(name) {
		seed = (seed ^ uint64(b)) * 1099511628211
	}
	if seed == 0 {
		seed = 1
	}
	out := make([]byte, size)
	for i := range out {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		out[i] = byte(seed)
	}
	return out
}

// frac maps an op index to a stable pseudo-random fraction in [0,1).
func frac(i int) float64 {
	x := uint64(i)*2654435761 + 1
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return float64(x%1000) / 1000
}
