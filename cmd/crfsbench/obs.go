package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	crfs "crfs"
	"crfs/internal/memfs"
	"crfs/internal/obs"
)

// quantiles is the per-stage latency summary attached to -real/-restart
// scenarios, derived from the mount's lock-free stage histograms. All
// values are microseconds, interpolated within histogram buckets
// (Prometheus histogram_quantile style), so treat them as bucket-grade
// estimates, not exact order statistics.
type quantiles struct {
	P50US float64 `json:"p50_us"`
	P95US float64 `json:"p95_us"`
	P99US float64 `json:"p99_us"`
}

func quantilesOf(s obs.HistogramSnapshot) quantiles {
	const us = 1e3 // histogram values are nanoseconds
	return quantiles{
		P50US: s.Quantile(0.50) / us,
		P95US: s.Quantile(0.95) / us,
		P99US: s.Quantile(0.99) / us,
	}
}

func (q quantiles) format(stage string) string {
	return fmt.Sprintf("latency %s: p50=%.1fus p95=%.1fus p99=%.1fus", stage, q.P50US, q.P95US, q.P99US)
}

// obsOverheadBench measures the tracing tax: the CPU-bound mixed
// read/write workload runs with spans disabled and again with a live
// tracer recording every pipeline span, and the throughput delta is
// the overhead. Each configuration runs `trials` times and the best
// run counts, so scheduler noise does not masquerade as span cost.
// A positive maxPct fails the run when the overhead exceeds it — the
// CI gate for "tracing is cheap enough to leave compiled in".
func obsOverheadBench(emit *emitter, codecName string, size int64, bs int, entropy, readFrac, maxPct float64) error {
	if entropy < 0 || entropy > 1 {
		return fmt.Errorf("crfsbench: -entropy %v out of range [0,1]", entropy)
	}
	if bs <= 0 || size <= 0 {
		return fmt.Errorf("crfsbench: -size and -bs must be positive")
	}
	if readFrac < 0 || readFrac >= 1 {
		return fmt.Errorf("crfsbench: -readfrac %v out of range [0,1)", readFrac)
	}
	cdc, err := crfs.LookupCodec(codecName)
	if err != nil {
		return err
	}
	const trials = 3
	best := func(enabled bool) (float64, error) {
		var top float64
		for i := 0; i < trials; i++ {
			mbps, err := mixRun(cdc, size, bs, entropy, readFrac, enabled)
			if err != nil {
				return 0, err
			}
			if mbps > top {
				top = mbps
			}
		}
		return top, nil
	}
	off, err := best(false)
	if err != nil {
		return err
	}
	on, err := best(true)
	if err != nil {
		return err
	}
	pct := (off - on) / off * 100
	emit.scenario(struct {
		Scenario    string  `json:"scenario"`
		Codec       string  `json:"codec"`
		Bytes       int64   `json:"bytes"`
		MBpsOff     float64 `json:"mbps_off"`
		MBpsOn      float64 `json:"mbps_on"`
		OverheadPct float64 `json:"overhead_pct"`
	}{"obs_overhead", cdc.Name(), size, off, on, pct},
		fmt.Sprintf("obs overhead: codec=%s tracing off %.1f MB/s, on %.1f MB/s (%.2f%% overhead)",
			cdc.Name(), off, on, pct))
	if maxPct > 0 && pct > maxPct {
		return fmt.Errorf("crfsbench: tracing overhead %.2f%% exceeds limit %.2f%%", pct, maxPct)
	}
	return nil
}

// mixRun executes one CPU-bound mixed read/write pass over an
// in-memory backend (no synthetic delay — delay would hide span cost)
// and returns the achieved MB/s. enabled selects whether the private
// tracer records spans; both arms pay the same Options plumbing so the
// comparison isolates the span fast path.
func mixRun(cdc crfs.Codec, size int64, bs int, entropy, readFrac float64, enabled bool) (float64, error) {
	tr := obs.New(obs.DefaultRingCapacity)
	tr.SetProcess("crfsbench")
	tr.SetEnabled(enabled)
	fs, err := crfs.Mount(memfs.New(), crfs.Options{Codec: cdc, Tracer: tr})
	if err != nil {
		return 0, err
	}
	f, err := fs.Open("bench.img", crfs.ReadWrite|crfs.Create)
	if err != nil {
		fs.Unmount()
		return 0, err
	}
	const poolLen = crfs.DefaultChunkSize
	pool := payloadPool(bs)
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, bs)
	rbuf := make([]byte, bs)
	nrand := int(float64(bs) * entropy)
	start := time.Now()
	for off := int64(0); off < size; {
		if off > 0 && rng.Float64() < readFrac {
			if _, err := f.ReadAt(rbuf, rng.Int63n(off)); err != nil && err != io.EOF {
				f.Close()
				fs.Unmount()
				return 0, err
			}
			continue
		}
		copy(buf[:nrand], pool[off%poolLen:])
		if _, err := f.WriteAt(buf, off); err != nil {
			f.Close()
			fs.Unmount()
			return 0, err
		}
		off += int64(bs)
	}
	if err := f.Close(); err != nil {
		fs.Unmount()
		return 0, err
	}
	if err := fs.Unmount(); err != nil {
		return 0, err
	}
	el := time.Since(start).Seconds()
	st := fs.Stats()
	return float64(st.BytesWritten+st.BytesRead) / el / (1 << 20), nil
}

// chromeXEvent is the slice of the chrome://tracing event format the
// -check-trace validator reads back: process metadata and complete
// events with the trace/span IDs crfs stamps into args.
type chromeXEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

// checkTrace validates a chrome-trace file produced by crfscp -trace
// (or crfsd's /debug/trace): some single trace ID must span at least
// minProcs distinct processes and include a client span (crfscp.*), a
// daemon request span (crfsd.*), and a core pipeline span (crfs.*) —
// i.e. one operation is visible end to end across process boundaries.
// For the striped 3-node CI flow minProcs is 4 (client + 3 daemons).
func checkTrace(emit *emitter, path string, minProcs int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var events []chromeXEvent
	if err := json.Unmarshal(data, &events); err != nil {
		// Also accept the object flavor some tools write.
		var doc struct {
			TraceEvents []chromeXEvent `json:"traceEvents"`
		}
		if err2 := json.Unmarshal(data, &doc); err2 != nil {
			return fmt.Errorf("crfsbench: %s is not a chrome trace: %v", path, err)
		}
		events = doc.TraceEvents
	}
	procName := make(map[int]string)
	for _, e := range events {
		if e.Ph == "M" && e.Name == "process_name" {
			if n, ok := e.Args["name"].(string); ok {
				procName[e.Pid] = n
			}
		}
	}
	type traceInfo struct {
		procs                map[string]bool
		spans                int
		client, daemon, core bool
	}
	per := make(map[string]*traceInfo)
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		id, _ := e.Args["trace"].(string)
		if id == "" {
			continue
		}
		ti := per[id]
		if ti == nil {
			ti = &traceInfo{procs: make(map[string]bool)}
			per[id] = ti
		}
		ti.spans++
		ti.procs[procName[e.Pid]] = true
		switch {
		case strings.HasPrefix(e.Name, "crfscp."):
			ti.client = true
		case strings.HasPrefix(e.Name, "crfsd."):
			ti.daemon = true
		case strings.HasPrefix(e.Name, "crfs."):
			ti.core = true
		}
	}
	var bestID string
	var best *traceInfo
	for id, ti := range per {
		if !ti.client || !ti.daemon || !ti.core || len(ti.procs) < minProcs {
			continue
		}
		if best == nil || ti.spans > best.spans {
			bestID, best = id, ti
		}
	}
	if best == nil {
		var diag []string
		for id, ti := range per {
			diag = append(diag, fmt.Sprintf("  trace %s: %d spans, %d procs, client=%v daemon=%v core=%v",
				id, ti.spans, len(ti.procs), ti.client, ti.daemon, ti.core))
		}
		sort.Strings(diag)
		return fmt.Errorf("crfsbench: %s: no trace spans client+daemon+core pipeline across >=%d processes\n%s",
			path, minProcs, strings.Join(diag, "\n"))
	}
	procs := make([]string, 0, len(best.procs))
	for p := range best.procs {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	emit.scenario(struct {
		Scenario string   `json:"scenario"`
		Trace    string   `json:"trace"`
		Spans    int      `json:"spans"`
		Procs    []string `json:"procs"`
	}{"check_trace", bestID, best.spans, procs},
		fmt.Sprintf("check-trace: trace %s spans %d processes (%s), %d spans, client+daemon+core pipeline all present",
			bestID, len(procs), strings.Join(procs, ", "), best.spans))
	return nil
}
