// Command crfsbench regenerates the tables and figures of the CRFS paper
// (Ouyang et al., ICPP 2011) from the deterministic simulation and prints
// paper-vs-measured comparisons.
//
// Usage:
//
//	crfsbench -list
//	crfsbench -run fig6
//	crfsbench -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crfs/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiment ids")
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := experiments.IDs()
	if *run != "all" {
		ids = []string{*run}
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		fmt.Printf("(regenerated in %.1fs)\n\n", time.Since(start).Seconds())
	}
}
