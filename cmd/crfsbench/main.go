// Command crfsbench regenerates the tables and figures of the CRFS paper
// (Ouyang et al., ICPP 2011) from the deterministic simulation and prints
// paper-vs-measured comparisons.
//
// Usage:
//
//	crfsbench -list
//	crfsbench -run fig6
//	crfsbench -run all
//
// Beyond the paper reproductions, -real benchmarks the real library's
// write path over an in-memory backend, including the chunk codec:
//
//	crfsbench -real -codec deflate -size 268435456 -bs 8192
//
// -real -mix interleaves reads with the writes (the buffered-read-through
// workload the paper's write-only scenario never exercises), and -delay
// adds synthetic backend write latency so the avoided drain stalls are
// visible:
//
//	crfsbench -real -mix -readfrac 0.5 -delay 200us -codec deflate
//
// -real -restart benchmarks the other half of the C/R story: the file is
// first checkpointed through the mount, then read back sequentially (the
// restart pattern), with -delay applied to every backend read so the
// read-ahead pipeline's latency hiding is visible. -readahead sets the
// prefetch depth (0 = synchronous reads):
//
//	crfsbench -real -restart -readahead 8 -delay 200us -codec deflate
//
// -crash runs the crash-consistency harness: a mixed write/sync/
// overwrite workload is recorded through a mount over the power-cut
// fault-injection backend, then every crash point (each mutation
// boundary plus torn cuts inside each write) is replayed, remounted,
// and checked against the durability contract. The run exits non-zero
// on any violation:
//
//	crfsbench -crash
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	crfs "crfs"
	"crfs/internal/crashfs"
	"crfs/internal/experiments"
	"crfs/internal/memfs"
)

func main() {
	list := flag.Bool("list", false, "list available experiment ids")
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	real := flag.Bool("real", false, "benchmark the real library write path instead of a simulation")
	codecName := flag.String("codec", "raw", "chunk codec for -real (raw|deflate)")
	size := flag.Int64("size", 256<<20, "bytes to write in -real mode")
	bs := flag.Int("bs", 8192, "application write size in -real mode")
	entropy := flag.Float64("entropy", 0.5, "fraction of incompressible bytes in the -real payload (0..1)")
	mix := flag.Bool("mix", false, "with -real: interleave reads of already-written data with the writes")
	readFrac := flag.Float64("readfrac", 0.5, "with -real -mix: fraction of operations that are reads (0..1)")
	delay := flag.Duration("delay", 0, "with -real: synthetic backend latency (e.g. 200us)")
	restart := flag.Bool("restart", false, "with -real: write the file, then benchmark sequential restart reads")
	readAhead := flag.Int("readahead", 0, "with -real -restart: read-ahead depth in chunks/frames (0 disables)")
	crash := flag.Bool("crash", false, "run the crash-point enumeration harness and verify the durability contract")
	flag.Parse()

	if *crash {
		if err := crashBench(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *real {
		var err error
		if *restart {
			err = restartBench(*codecName, *size, *bs, *entropy, *readAhead, *delay)
		} else {
			err = realBench(*codecName, *size, *bs, *entropy, *mix, *readFrac, *delay)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := experiments.IDs()
	if *run != "all" {
		ids = []string{*run}
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		fmt.Printf("(regenerated in %.1fs)\n\n", time.Since(start).Seconds())
	}
}

// crashBench sweeps the crash-point harness across the codec × repair
// matrix on the standard mixed write/sync/overwrite workload, printing
// one row per configuration. Any durability-contract violation fails
// the run.
func crashBench() error {
	type cfg struct {
		name   string
		codec  crfs.Codec
		repair bool
	}
	matrix := []cfg{
		{"raw", crfs.RawCodec(), false},
		{"raw+repair", crfs.RawCodec(), true},
		{"deflate", crfs.DeflateCodec(), false},
		{"deflate+repair", crfs.DeflateCodec(), true},
	}
	fmt.Printf("%-16s %10s %8s %10s %9s %9s %11s %10s\n",
		"config", "mutations", "points", "violations", "salvaged", "repaired", "frames-lost", "bytes-cut")
	failed := false
	for _, m := range matrix {
		res, err := crashfs.RunHarness(crashfs.HarnessConfig{
			Codec: m.codec, Repair: m.repair, Torn: true,
		}, crashfs.MixedWorkload())
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %10d %8d %10d %9d %9d %11d %10d\n",
			m.name, res.Mutations, res.Points, len(res.Violations),
			res.Salvaged, res.Repaired, res.FramesDropped, res.BytesTruncated)
		for _, v := range res.Violations {
			failed = true
			fmt.Fprintf(os.Stderr, "  VIOLATION [%s]: %s\n", m.name, v)
		}
	}
	if failed {
		return fmt.Errorf("crfsbench: durability contract violated")
	}
	fmt.Println("durability contract proven at every enumerated crash point")
	return nil
}

// realBench drives the real aggregation pipeline: checkpoint-sized writes
// through a mount over an in-memory backend, reporting throughput,
// aggregation, and the codec's IO-volume saving. With mix, reads of
// already-written offsets are interleaved at the given fraction; they are
// served by the buffered-read-through overlay, so the write pipeline
// never drains mid-run.
func realBench(codecName string, size int64, bs int, entropy float64, mix bool, readFrac float64, delay time.Duration) error {
	if entropy < 0 || entropy > 1 {
		return fmt.Errorf("crfsbench: -entropy %v out of range [0,1]", entropy)
	}
	if bs <= 0 || size <= 0 {
		return fmt.Errorf("crfsbench: -size and -bs must be positive")
	}
	if mix && (readFrac < 0 || readFrac >= 1) {
		return fmt.Errorf("crfsbench: -readfrac %v out of range [0,1)", readFrac)
	}
	cdc, err := crfs.LookupCodec(codecName)
	if err != nil {
		return err
	}
	fs, err := crfs.Mount(memfs.New(memfs.WithWriteDelay(delay)), crfs.Options{Codec: cdc})
	if err != nil {
		return err
	}
	flag := crfs.OpenFlag(crfs.WriteOnly)
	if mix {
		flag = crfs.ReadWrite
	}
	f, err := fs.Open("bench.img", flag|crfs.Create)
	if err != nil {
		fs.Unmount()
		return err
	}
	// Payload: each write takes its incompressible fraction from a
	// sliding window over a chunk-sized random pool (so repetition never
	// appears within one codec frame) and zeros for the rest.
	const poolLen = crfs.DefaultChunkSize
	pool := make([]byte, poolLen+int64(bs))
	rng := rand.New(rand.NewSource(1))
	rng.Read(pool)
	buf := make([]byte, bs)
	rbuf := make([]byte, bs)
	nrand := int(float64(bs) * entropy)
	start := time.Now()
	for off := int64(0); off < size; {
		if mix && off > 0 && rng.Float64() < readFrac {
			if _, err := f.ReadAt(rbuf, rng.Int63n(off)); err != nil && err != io.EOF {
				f.Close()
				fs.Unmount()
				return err
			}
			continue
		}
		copy(buf[:nrand], pool[off%poolLen:])
		if _, err := f.WriteAt(buf, off); err != nil {
			f.Close()
			fs.Unmount()
			return err
		}
		off += int64(bs)
	}
	if err := f.Close(); err != nil {
		fs.Unmount()
		return err
	}
	if err := fs.Unmount(); err != nil {
		return err
	}
	el := time.Since(start).Seconds()
	st := fs.Stats()
	moved := st.BytesWritten + st.BytesRead
	fmt.Printf("real: codec=%s wrote %d bytes, read %d bytes in %.3fs (%.1f MB/s)\n",
		cdc.Name(), st.BytesWritten, st.BytesRead, el, float64(moved)/el/(1<<20))
	fmt.Printf("app writes: %d, backend writes: %d (aggregation %.1fx), backend bytes: %d\n",
		st.Writes, st.BackendWrites, st.AggregationRatio(), st.BackendBytes)
	if cs := st.Codec(); cs.Frames > 0 {
		fmt.Println(cs.Format())
	}
	if rp := st.ReadPath(); rp.Reads > 0 {
		fmt.Println(rp.Format())
	}
	return nil
}

// restartBench measures the restart read pipeline: a checkpoint image is
// written through one mount, then read back sequentially through a fresh
// mount with the given read-ahead depth, every backend read paying the
// synthetic latency. Comparing -readahead 0 against a positive depth
// isolates what the prefetch pipeline hides.
func restartBench(codecName string, size int64, bs int, entropy float64, readAhead int, delay time.Duration) error {
	if entropy < 0 || entropy > 1 {
		return fmt.Errorf("crfsbench: -entropy %v out of range [0,1]", entropy)
	}
	if bs <= 0 || size <= 0 {
		return fmt.Errorf("crfsbench: -size and -bs must be positive")
	}
	if readAhead < 0 {
		return fmt.Errorf("crfsbench: -readahead must be >= 0")
	}
	cdc, err := crfs.LookupCodec(codecName)
	if err != nil {
		return err
	}
	back := memfs.New(memfs.WithReadDelay(delay))

	// Checkpoint phase: land the image (write latency is not the point
	// here; the backend delays reads only).
	wfs, err := crfs.Mount(back, crfs.Options{Codec: cdc})
	if err != nil {
		return err
	}
	const poolLen = crfs.DefaultChunkSize
	pool := make([]byte, poolLen+int64(bs))
	rng := rand.New(rand.NewSource(1))
	rng.Read(pool)
	buf := make([]byte, bs)
	nrand := int(float64(bs) * entropy)
	w, err := wfs.Open("restart.img", crfs.WriteOnly|crfs.Create)
	if err != nil {
		wfs.Unmount()
		return err
	}
	for off := int64(0); off < size; off += int64(bs) {
		copy(buf[:nrand], pool[off%poolLen:])
		if _, err := w.WriteAt(buf, off); err != nil {
			w.Close()
			wfs.Unmount()
			return err
		}
	}
	if err := w.Close(); err != nil {
		wfs.Unmount()
		return err
	}
	if err := wfs.Unmount(); err != nil {
		return err
	}

	// Restart phase: sequential read-back, timed.
	fs, err := crfs.Mount(back, crfs.Options{Codec: cdc, ReadAhead: readAhead})
	if err != nil {
		return err
	}
	f, err := fs.Open("restart.img", crfs.ReadOnly)
	if err != nil {
		fs.Unmount()
		return err
	}
	start := time.Now()
	var total int64
	for off := int64(0); off < size; {
		n, err := f.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			f.Close()
			fs.Unmount()
			return err
		}
		if n == 0 {
			break
		}
		total += int64(n)
		off += int64(n)
	}
	el := time.Since(start).Seconds()
	if err := f.Close(); err != nil {
		fs.Unmount()
		return err
	}
	if err := fs.Unmount(); err != nil {
		return err
	}
	st := fs.Stats()
	fmt.Printf("restart: codec=%s readahead=%d delay=%v read %d bytes in %.3fs (%.1f MB/s)\n",
		cdc.Name(), readAhead, delay, total, el, float64(total)/el/(1<<20))
	fmt.Println(st.Prefetch().Format())
	return nil
}
