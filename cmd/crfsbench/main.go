// Command crfsbench regenerates the tables and figures of the CRFS paper
// (Ouyang et al., ICPP 2011) from the deterministic simulation and prints
// paper-vs-measured comparisons.
//
// Usage:
//
//	crfsbench -list
//	crfsbench -run fig6
//	crfsbench -run all
//
// Beyond the paper reproductions, -real benchmarks the real library's
// write path over an in-memory backend, including the chunk codec:
//
//	crfsbench -real -codec deflate -size 268435456 -bs 8192
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	crfs "crfs"
	"crfs/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiment ids")
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	real := flag.Bool("real", false, "benchmark the real library write path instead of a simulation")
	codecName := flag.String("codec", "raw", "chunk codec for -real (raw|deflate)")
	size := flag.Int64("size", 256<<20, "bytes to write in -real mode")
	bs := flag.Int("bs", 8192, "application write size in -real mode")
	entropy := flag.Float64("entropy", 0.5, "fraction of incompressible bytes in the -real payload (0..1)")
	flag.Parse()

	if *real {
		if err := realBench(*codecName, *size, *bs, *entropy); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := experiments.IDs()
	if *run != "all" {
		ids = []string{*run}
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		fmt.Printf("(regenerated in %.1fs)\n\n", time.Since(start).Seconds())
	}
}

// realBench drives the real aggregation pipeline: checkpoint-sized writes
// through a mount over an in-memory backend, reporting throughput,
// aggregation, and the codec's IO-volume saving.
func realBench(codecName string, size int64, bs int, entropy float64) error {
	if entropy < 0 || entropy > 1 {
		return fmt.Errorf("crfsbench: -entropy %v out of range [0,1]", entropy)
	}
	if bs <= 0 || size <= 0 {
		return fmt.Errorf("crfsbench: -size and -bs must be positive")
	}
	cdc, err := crfs.LookupCodec(codecName)
	if err != nil {
		return err
	}
	fs, err := crfs.Mount(crfs.MemBackend(), crfs.Options{Codec: cdc})
	if err != nil {
		return err
	}
	f, err := fs.Open("bench.img", crfs.WriteOnly|crfs.Create)
	if err != nil {
		fs.Unmount()
		return err
	}
	// Payload: each write takes its incompressible fraction from a
	// sliding window over a chunk-sized random pool (so repetition never
	// appears within one codec frame) and zeros for the rest.
	const poolLen = crfs.DefaultChunkSize
	pool := make([]byte, poolLen+int64(bs))
	rand.New(rand.NewSource(1)).Read(pool)
	buf := make([]byte, bs)
	nrand := int(float64(bs) * entropy)
	start := time.Now()
	for off := int64(0); off < size; off += int64(bs) {
		copy(buf[:nrand], pool[off%poolLen:])
		if _, err := f.WriteAt(buf, off); err != nil {
			f.Close()
			fs.Unmount()
			return err
		}
	}
	if err := f.Close(); err != nil {
		fs.Unmount()
		return err
	}
	if err := fs.Unmount(); err != nil {
		return err
	}
	el := time.Since(start).Seconds()
	st := fs.Stats()
	fmt.Printf("real: codec=%s wrote %d bytes in %.3fs (%.1f MB/s)\n",
		cdc.Name(), st.BytesWritten, el, float64(st.BytesWritten)/el/(1<<20))
	fmt.Printf("app writes: %d, backend writes: %d (aggregation %.1fx), backend bytes: %d\n",
		st.Writes, st.BackendWrites, st.AggregationRatio(), st.BackendBytes)
	if cs := st.Codec(); cs.Frames > 0 {
		fmt.Println(cs.Format())
	}
	return nil
}
