// Command crfsbench regenerates the tables and figures of the CRFS paper
// (Ouyang et al., ICPP 2011) from the deterministic simulation and prints
// paper-vs-measured comparisons.
//
// Usage:
//
//	crfsbench -list
//	crfsbench -run fig6
//	crfsbench -run all
//
// Beyond the paper reproductions, -real benchmarks the real library's
// write path over an in-memory backend, including the chunk codec:
//
//	crfsbench -real -codec deflate -size 268435456 -bs 8192
//
// -real -mix interleaves reads with the writes (the buffered-read-through
// workload the paper's write-only scenario never exercises), and -delay
// adds synthetic backend write latency so the avoided drain stalls are
// visible:
//
//	crfsbench -real -mix -readfrac 0.5 -delay 200us -codec deflate
//
// -real -restart benchmarks the other half of the C/R story: the file is
// first checkpointed through the mount, then read back sequentially (the
// restart pattern), with -delay applied to every backend read so the
// read-ahead pipeline's latency hiding is visible. -readahead sets the
// prefetch depth (0 = synchronous reads):
//
//	crfsbench -real -restart -readahead 8 -delay 200us -codec deflate
//
// -crash runs the crash-consistency harness: a mixed write/sync/
// overwrite workload is recorded through a mount over the power-cut
// fault-injection backend, then every crash point (each mutation
// boundary plus torn cuts inside each write) is replayed, remounted,
// and checked against the durability contract — including, in the
// compaction rows, with online compaction rewriting containers both
// during the recorded workload and at every crash state. The run exits
// non-zero on any violation:
//
//	crfsbench -crash
//
// -compact runs the space-amplification sweep: a rewrite-heavy
// checkpoint workload (full write plus -rewrites overwrite passes)
// accumulates dead frames, compaction rewrites the container to its
// minimal equivalent, and the dead-byte ratio before/after is reported
// (the run fails unless compaction drives it to ~0). The same mode then
// measures scrub scaling: every frame of the container is re-verified
// over a -delay-injected backend with 1 and 4 IO workers, reporting the
// parallel speedup:
//
//	crfsbench -compact -codec deflate -size 8388608 -delay 200us
//
// -server drives a crfsd daemon with -clients concurrent protocol-v2
// clients over persistent connections, each running -ops self-verifying
// PUT/GET operations ('inproc' spins a server up in-process over an
// in-memory mount). -server with -stall instead checks the daemon reaps
// a client that stalls mid-PUT:
//
//	crfsbench -server 127.0.0.1:9000 -clients 32 -ops 64 -objsize 1048576
//	crfsbench -server 127.0.0.1:9000 -stall -stall-timeout 20s
//
// -nodes runs the striped-store sweep: N in-process daemons over
// latency-injected backends, a checkpoint striped and restored at every
// cluster size 1..N (the run fails unless the 3-node restore beats
// single-node by >= 2x when -delay > 0), then a corrupt-replica pass
// (restore must stay byte-identical, scrub must repair to zero residual)
// and a kill-node pass (restore must fail over to surviving replicas).
// -stripe-op runs one striped operation against real daemons instead,
// with -server holding the comma-separated node addresses:
//
//	crfsbench -nodes 3 -objsize 67108864 -stripe-chunk 1048576 -delay 2ms
//	crfsbench -server :9000,:9001,:9002 -stripe-op put -objsize 8388608
//
// -obs-overhead measures the observability tax: the CPU-bound mix
// workload runs with span tracing disabled and enabled and the
// throughput delta is reported (-max-overhead-pct turns the report
// into a gate). -check-trace validates a chrome-trace file written by
// crfscp -trace: one trace ID must span the client, a daemon, and the
// core IO pipeline across at least -check-procs distinct processes —
// the end-to-end propagation check the striped CI flow relies on:
//
//	crfsbench -obs-overhead -codec raw -size 268435456 -max-overhead-pct 5
//	crfsbench -check-trace trace.json -check-procs 4
//
// -json switches every -real/-restart/-crash/-compact/-server scenario
// to machine-readable output: one JSON object per scenario on stdout,
// so perf trajectories can be captured as BENCH_*.json. -real and
// -restart rows include p50/p95/p99 stage latencies from the mount's
// histograms.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	crfs "crfs"
	"crfs/internal/crashfs"
	"crfs/internal/experiments"
	"crfs/internal/memfs"
	"crfs/internal/stripe"
)

func main() {
	list := flag.Bool("list", false, "list available experiment ids")
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	real := flag.Bool("real", false, "benchmark the real library write path instead of a simulation")
	codecName := flag.String("codec", "raw", "chunk codec for -real (raw|deflate)")
	size := flag.Int64("size", 256<<20, "bytes to write in -real mode")
	bs := flag.Int("bs", 8192, "application write size in -real mode")
	entropy := flag.Float64("entropy", 0.5, "fraction of incompressible bytes in the -real payload (0..1)")
	mix := flag.Bool("mix", false, "with -real: interleave reads of already-written data with the writes")
	readFrac := flag.Float64("readfrac", 0.5, "with -real -mix: fraction of operations that are reads (0..1)")
	delay := flag.Duration("delay", 0, "with -real: synthetic backend latency (e.g. 200us)")
	restart := flag.Bool("restart", false, "with -real: write the file, then benchmark sequential restart reads")
	readAhead := flag.Int("readahead", 0, "with -real -restart: read-ahead depth in chunks/frames (0 disables)")
	crash := flag.Bool("crash", false, "run the crash-point enumeration harness and verify the durability contract")
	compactRun := flag.Bool("compact", false, "run the space-amplification sweep (rewrite-heavy workload, compaction, scrub scaling)")
	rewrites := flag.Int("rewrites", 4, "with -compact: overwrite passes over the checkpoint image")
	frameV := flag.Int("framev", 0, "with -real: frame format version to write (0=current, 1=legacy no-checksum, 2=checksummed)")
	serverAddr := flag.String("server", "", "drive a crfsd daemon at this address with concurrent clients ('inproc' spins one up in-process)")
	clients := flag.Int("clients", 8, "with -server: concurrent clients")
	ops := flag.Int("ops", 64, "with -server: operations per client")
	objSize := flag.Int64("objsize", 1<<20, "with -server: object size in bytes")
	putFrac := flag.Float64("putfrac", 0.5, "with -server: fraction of operations that are PUTs")
	stall := flag.Bool("stall", false, "with -server: check the daemon reaps a client that stalls mid-PUT")
	stallTimeout := flag.Duration("stall-timeout", 30*time.Second, "with -server -stall: how long to wait for the reap")
	nodes := flag.Int("nodes", 0, "striped-store hermetic sweep over this many in-process daemons (uses -objsize, -stripe-chunk, -replicas, -delay)")
	stripeOp := flag.String("stripe-op", "", "with comma-separated -server addrs: one striped operation against real daemons (put|restore|scrub)")
	stripeChunk := flag.Int64("stripe-chunk", stripe.DefaultChunkSize, "stripe chunk size for striped modes")
	replicas := flag.Int("replicas", stripe.DefaultReplicas, "chunk replication factor for striped modes")
	jsonOut := flag.Bool("json", false, "emit one JSON object per scenario instead of human-readable text")
	obsOverhead := flag.Bool("obs-overhead", false, "measure the tracing tax: CPU-bound mix workload with spans off vs on")
	maxOverhead := flag.Float64("max-overhead-pct", 0, "with -obs-overhead: fail if the overhead exceeds this percentage (0 = report only)")
	checkTracePath := flag.String("check-trace", "", "validate a chrome-trace file: one trace must span client, daemon, and core pipeline")
	checkProcs := flag.Int("check-procs", 2, "with -check-trace: minimum distinct processes one trace must cover")
	flag.Parse()

	emit := newEmitter(*jsonOut)
	switch {
	case *checkTracePath != "":
		if err := checkTrace(emit, *checkTracePath, *checkProcs); err != nil {
			fatal(err)
		}
		return
	case *obsOverhead:
		if err := obsOverheadBench(emit, *codecName, *size, *bs, *entropy, *readFrac, *maxOverhead); err != nil {
			fatal(err)
		}
		return
	case *nodes > 0:
		if err := stripeSweep(emit, *nodes, *objSize, *stripeChunk, *replicas, *delay); err != nil {
			fatal(err)
		}
		return
	case *stripeOp != "":
		if err := stripeRealBench(emit, strings.Split(*serverAddr, ","), *stripeOp, *objSize, *stripeChunk, *replicas); err != nil {
			fatal(err)
		}
		return
	case *serverAddr != "":
		var err error
		if *stall {
			err = stallCheck(emit, *serverAddr, *stallTimeout)
		} else {
			err = serverBench(emit, *serverAddr, *clients, *ops, *objSize, *putFrac)
		}
		if err != nil {
			fatal(err)
		}
		return
	case *crash:
		if err := crashBench(emit); err != nil {
			fatal(err)
		}
		return
	case *compactRun:
		if err := compactBench(emit, *codecName, *size, *bs, *entropy, *rewrites, *delay); err != nil {
			fatal(err)
		}
		return
	case *real:
		var err error
		if *restart {
			err = restartBench(emit, *codecName, *size, *bs, *entropy, *readAhead, *delay)
		} else {
			err = realBench(emit, *codecName, *size, *bs, *entropy, *mix, *readFrac, *delay, *frameV)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := experiments.IDs()
	if *run != "all" {
		ids = []string{*run}
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Format())
		fmt.Printf("(regenerated in %.1fs)\n\n", time.Since(start).Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// emitter routes each scenario's result: JSON mode encodes the result
// object (one per line, BENCH_*.json-ready); human mode prints the
// preformatted text lines instead.
type emitter struct {
	json bool
	enc  *json.Encoder
}

func newEmitter(jsonOut bool) *emitter {
	return &emitter{json: jsonOut, enc: json.NewEncoder(os.Stdout)}
}

// scenario emits one result: v in JSON mode, the human lines otherwise.
func (e *emitter) scenario(v any, human ...string) {
	if e.json {
		if err := e.enc.Encode(v); err != nil {
			fatal(err)
		}
		return
	}
	for _, line := range human {
		fmt.Println(line)
	}
}

// crashBench sweeps the crash-point harness across the codec × repair ×
// compaction matrix on the standard mixed write/sync/overwrite workload,
// one row (scenario) per configuration. Any durability-contract
// violation fails the run.
func crashBench(emit *emitter) error {
	type cfg struct {
		name       string
		codec      crfs.Codec
		repair     bool
		compaction bool
	}
	matrix := []cfg{
		{"raw", crfs.RawCodec(), false, false},
		{"raw+repair", crfs.RawCodec(), true, false},
		{"deflate", crfs.DeflateCodec(), false, false},
		{"deflate+repair", crfs.DeflateCodec(), true, false},
		{"deflate+compact", crfs.DeflateCodec(), false, true},
		{"deflate+compact+repair", crfs.DeflateCodec(), true, true},
	}
	if !emit.json {
		fmt.Printf("%-24s %10s %8s %10s %9s %9s %11s %10s %9s %9s %9s %9s\n",
			"config", "mutations", "points", "violations", "salvaged", "repaired", "frames-lost", "bytes-cut", "rec-cmpct", "pt-cmpct", "crc-ok", "crc-fail")
	}
	failed := false
	for _, m := range matrix {
		res, err := crashfs.RunHarness(crashfs.HarnessConfig{
			Codec: m.codec, Repair: m.repair, Torn: true, Compaction: m.compaction,
		}, crashfs.MixedWorkload())
		if err != nil {
			return err
		}
		emit.scenario(struct {
			Scenario          string `json:"scenario"`
			Config            string `json:"config"`
			Mutations         int    `json:"mutations"`
			Points            int    `json:"points"`
			Violations        int    `json:"violations"`
			Salvaged          int64  `json:"salvaged"`
			Repaired          int64  `json:"repaired"`
			FramesLost        int64  `json:"frames_lost"`
			BytesCut          int64  `json:"bytes_cut"`
			RecordCompactions int64  `json:"record_compactions"`
			PointCompactions  int64  `json:"point_compactions"`
			ChecksumVerified  int64  `json:"checksum_verified"`
			ChecksumSkipped   int64  `json:"checksum_skipped"`
			ChecksumFailed    int64  `json:"checksum_failed"`
		}{"crash", m.name, res.Mutations, res.Points, len(res.Violations),
			res.Salvaged, res.Repaired, res.FramesDropped, res.BytesTruncated,
			res.RecordCompactions, res.PointCompactions,
			res.ChecksumVerified, res.ChecksumSkipped, res.ChecksumFailed},
			fmt.Sprintf("%-24s %10d %8d %10d %9d %9d %11d %10d %9d %9d %9d %9d",
				m.name, res.Mutations, res.Points, len(res.Violations),
				res.Salvaged, res.Repaired, res.FramesDropped, res.BytesTruncated,
				res.RecordCompactions, res.PointCompactions,
				res.ChecksumVerified, res.ChecksumFailed))
		for _, v := range res.Violations {
			failed = true
			fmt.Fprintf(os.Stderr, "  VIOLATION [%s]: %s\n", m.name, v)
		}
		if m.compaction && (res.RecordCompactions == 0 || res.PointCompactions == 0) {
			failed = true
			fmt.Fprintf(os.Stderr, "  [%s] compaction never exercised (record=%d point=%d)\n",
				m.name, res.RecordCompactions, res.PointCompactions)
		}
	}
	if failed {
		return fmt.Errorf("crfsbench: durability contract violated")
	}
	if !emit.json {
		fmt.Println("durability contract proven at every enumerated crash point (compaction included)")
	}
	return nil
}

// payloadPool builds the shared benchmark payload source: a sliding
// window over a chunk-sized random pool, so repetition never appears
// within one codec frame.
func payloadPool(bs int) []byte {
	pool := make([]byte, crfs.DefaultChunkSize+int64(bs))
	rand.New(rand.NewSource(1)).Read(pool)
	return pool
}

// realBench drives the real aggregation pipeline: checkpoint-sized writes
// through a mount over an in-memory backend, reporting throughput,
// aggregation, and the codec's IO-volume saving. With mix, reads of
// already-written offsets are interleaved at the given fraction; they are
// served by the buffered-read-through overlay, so the write pipeline
// never drains mid-run.
func realBench(emit *emitter, codecName string, size int64, bs int, entropy float64, mix bool, readFrac float64, delay time.Duration, frameV int) error {
	if entropy < 0 || entropy > 1 {
		return fmt.Errorf("crfsbench: -entropy %v out of range [0,1]", entropy)
	}
	if bs <= 0 || size <= 0 {
		return fmt.Errorf("crfsbench: -size and -bs must be positive")
	}
	if mix && (readFrac < 0 || readFrac >= 1) {
		return fmt.Errorf("crfsbench: -readfrac %v out of range [0,1)", readFrac)
	}
	cdc, err := crfs.LookupCodec(codecName)
	if err != nil {
		return err
	}
	fs, err := crfs.Mount(memfs.New(memfs.WithWriteDelay(delay)), crfs.Options{Codec: cdc, FrameVersion: frameV})
	if err != nil {
		return err
	}
	if frameV == 0 {
		frameV = crfs.FrameVersion
	}
	flag := crfs.OpenFlag(crfs.WriteOnly)
	if mix {
		flag = crfs.ReadWrite
	}
	f, err := fs.Open("bench.img", flag|crfs.Create)
	if err != nil {
		fs.Unmount()
		return err
	}
	const poolLen = crfs.DefaultChunkSize
	pool := payloadPool(bs)
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, bs)
	rbuf := make([]byte, bs)
	nrand := int(float64(bs) * entropy)
	start := time.Now()
	for off := int64(0); off < size; {
		if mix && off > 0 && rng.Float64() < readFrac {
			if _, err := f.ReadAt(rbuf, rng.Int63n(off)); err != nil && err != io.EOF {
				f.Close()
				fs.Unmount()
				return err
			}
			continue
		}
		copy(buf[:nrand], pool[off%poolLen:])
		if _, err := f.WriteAt(buf, off); err != nil {
			f.Close()
			fs.Unmount()
			return err
		}
		off += int64(bs)
	}
	if err := f.Close(); err != nil {
		fs.Unmount()
		return err
	}
	if err := fs.Unmount(); err != nil {
		return err
	}
	el := time.Since(start).Seconds()
	st := fs.Stats()
	hist := fs.Histograms()
	writeQ := quantilesOf(hist["write_at"])
	backendQ := quantilesOf(hist["backend_write"])
	moved := st.BytesWritten + st.BytesRead
	scenario := "write"
	if mix {
		scenario = "mix"
	}
	human := []string{
		fmt.Sprintf("real: codec=%s framev=%d wrote %d bytes, read %d bytes in %.3fs (%.1f MB/s)",
			cdc.Name(), frameV, st.BytesWritten, st.BytesRead, el, float64(moved)/el/(1<<20)),
		fmt.Sprintf("app writes: %d, backend writes: %d (aggregation %.1fx), backend bytes: %d",
			st.Writes, st.BackendWrites, st.AggregationRatio(), st.BackendBytes),
		writeQ.format("write_at"),
		backendQ.format("backend_write"),
	}
	if cs := st.Codec(); cs.Frames > 0 {
		human = append(human, cs.Format())
	}
	if rp := st.ReadPath(); rp.Reads > 0 {
		human = append(human, rp.Format())
	}
	emit.scenario(struct {
		Scenario         string    `json:"scenario"`
		Codec            string    `json:"codec"`
		FrameVersion     int       `json:"frame_version"`
		DelayUS          int64     `json:"delay_us"`
		BytesWritten     int64     `json:"bytes_written"`
		BytesRead        int64     `json:"bytes_read"`
		Seconds          float64   `json:"seconds"`
		MBps             float64   `json:"mbps"`
		Writes           int64     `json:"writes"`
		BackendWrites    int64     `json:"backend_writes"`
		AggregationRatio float64   `json:"aggregation_ratio"`
		BackendBytes     int64     `json:"backend_bytes"`
		CodecRatio       float64   `json:"codec_ratio"`
		ReadsFromBuffer  int64     `json:"reads_from_buffer"`
		DrainsAvoided    int64     `json:"drains_avoided"`
		WriteLatency     quantiles `json:"write_latency"`
		BackendLatency   quantiles `json:"backend_write_latency"`
	}{scenario, cdc.Name(), frameV, delay.Microseconds(), st.BytesWritten, st.BytesRead, el,
		float64(moved) / el / (1 << 20), st.Writes, st.BackendWrites, st.AggregationRatio(),
		st.BackendBytes, st.CompressionRatio(), st.ReadsFromBuffer, st.ReadDrainsAvoided,
		writeQ, backendQ},
		human...)
	return nil
}

// restartBench measures the restart read pipeline: a checkpoint image is
// written through one mount, then read back sequentially through a fresh
// mount with the given read-ahead depth, every backend read paying the
// synthetic latency. Comparing -readahead 0 against a positive depth
// isolates what the prefetch pipeline hides.
func restartBench(emit *emitter, codecName string, size int64, bs int, entropy float64, readAhead int, delay time.Duration) error {
	if entropy < 0 || entropy > 1 {
		return fmt.Errorf("crfsbench: -entropy %v out of range [0,1]", entropy)
	}
	if bs <= 0 || size <= 0 {
		return fmt.Errorf("crfsbench: -size and -bs must be positive")
	}
	if readAhead < 0 {
		return fmt.Errorf("crfsbench: -readahead must be >= 0")
	}
	cdc, err := crfs.LookupCodec(codecName)
	if err != nil {
		return err
	}
	back := memfs.New(memfs.WithReadDelay(delay))
	if err := writeImage(back, "restart.img", cdc, size, bs, entropy, crfs.Options{Codec: cdc}); err != nil {
		return err
	}

	// Restart phase: sequential read-back, timed.
	fs, err := crfs.Mount(back, crfs.Options{Codec: cdc, ReadAhead: readAhead})
	if err != nil {
		return err
	}
	f, err := fs.Open("restart.img", crfs.ReadOnly)
	if err != nil {
		fs.Unmount()
		return err
	}
	buf := make([]byte, bs)
	start := time.Now()
	var total int64
	for off := int64(0); off < size; {
		n, err := f.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			f.Close()
			fs.Unmount()
			return err
		}
		if n == 0 {
			break
		}
		total += int64(n)
		off += int64(n)
	}
	el := time.Since(start).Seconds()
	if err := f.Close(); err != nil {
		fs.Unmount()
		return err
	}
	if err := fs.Unmount(); err != nil {
		return err
	}
	st := fs.Stats()
	readQ := quantilesOf(fs.Histograms()["read_at"])
	emit.scenario(struct {
		Scenario    string    `json:"scenario"`
		Codec       string    `json:"codec"`
		ReadAhead   int       `json:"readahead"`
		DelayUS     int64     `json:"delay_us"`
		Bytes       int64     `json:"bytes"`
		Seconds     float64   `json:"seconds"`
		MBps        float64   `json:"mbps"`
		Hits        int64     `json:"prefetch_hits"`
		Misses      int64     `json:"prefetch_misses"`
		Wasted      int64     `json:"prefetch_wasted"`
		ReadLatency quantiles `json:"read_latency"`
	}{"restart", cdc.Name(), readAhead, delay.Microseconds(), total, el,
		float64(total) / el / (1 << 20), st.PrefetchHits, st.PrefetchMisses, st.PrefetchWasted, readQ},
		fmt.Sprintf("restart: codec=%s readahead=%d delay=%v read %d bytes in %.3fs (%.1f MB/s)",
			cdc.Name(), readAhead, delay, total, el, float64(total)/el/(1<<20)),
		st.Prefetch().Format(),
		readQ.format("read_at"))
	return nil
}

// writeImage checkpoints one image through a fresh mount over back.
func writeImage(back crfs.Filesystem, name string, cdc crfs.Codec, size int64, bs int, entropy float64, opts crfs.Options) error {
	fs, err := crfs.Mount(back, opts)
	if err != nil {
		return err
	}
	const poolLen = crfs.DefaultChunkSize
	pool := payloadPool(bs)
	buf := make([]byte, bs)
	nrand := int(float64(bs) * entropy)
	w, err := fs.Open(name, crfs.WriteOnly|crfs.Create)
	if err != nil {
		fs.Unmount()
		return err
	}
	for off := int64(0); off < size; off += int64(bs) {
		copy(buf[:nrand], pool[off%poolLen:])
		if _, err := w.WriteAt(buf, off); err != nil {
			w.Close()
			fs.Unmount()
			return err
		}
	}
	if err := w.Close(); err != nil {
		fs.Unmount()
		return err
	}
	return fs.Unmount()
}

// compactBench is the space-amplification sweep plus scrub scaling.
//
// Phase 1 (compaction): a checkpoint image is written and then partially
// overwritten -rewrites times through a framed mount — the in-place
// incremental checkpoint pattern — so the log-structured container
// accumulates dead frames. The dead-byte ratio before and after an
// explicit compaction is reported; the run fails unless compaction
// drives it to ~0 while reads stay byte-identical.
//
// Phase 2 (scrub): the compacted container's frames are re-verified
// through mounts with 1 and 4 IO workers over a backend whose reads pay
// -delay, reporting the parallel speedup of the pFSCK-style fan-out.
func compactBench(emit *emitter, codecName string, size int64, bs int, entropy float64, rewrites int, delay time.Duration) error {
	cdc, err := crfs.LookupCodec(codecName)
	if err != nil {
		return err
	}
	if cdc.Name() == "raw" {
		return fmt.Errorf("crfsbench: -compact requires a framing codec (raw mounts write plain files); try -codec deflate")
	}
	if size <= 0 || bs <= 0 || rewrites < 1 {
		return fmt.Errorf("crfsbench: -size, -bs, -rewrites must be positive")
	}
	chunk := int64(64 << 10)
	if int64(bs) > chunk {
		chunk = int64(bs)
	}
	const name = "compact.img"

	// Phase 1 on an undelayed backend: compaction cost, not backend
	// latency, is the subject.
	back := memfs.New()
	fs, err := crfs.Mount(back, crfs.Options{Codec: cdc, ChunkSize: chunk})
	if err != nil {
		return err
	}
	f, err := fs.Open(name, crfs.WriteOnly|crfs.Create)
	if err != nil {
		fs.Unmount()
		return err
	}
	pool := payloadPool(int(chunk))
	buf := make([]byte, chunk)
	nrand := int(float64(chunk) * entropy)
	write := func(off, salt int64) error {
		copy(buf[:nrand], pool[(off+salt*7919)%crfs.DefaultChunkSize:])
		_, err := f.WriteAt(buf, off)
		return err
	}
	for off := int64(0); off < size; off += chunk {
		if err := write(off, 0); err != nil {
			fs.Unmount()
			return err
		}
	}
	for pass := 1; pass <= rewrites; pass++ {
		// Overwrite every other chunk: half the image is rewritten in
		// place each pass, the incremental-checkpoint shape.
		for off := int64(0); off < size; off += 2 * chunk {
			if err := write(off, int64(pass)); err != nil {
				fs.Unmount()
				return err
			}
		}
		if err := f.Sync(); err != nil {
			fs.Unmount()
			return err
		}
	}
	if err := f.Close(); err != nil {
		fs.Unmount()
		return err
	}
	info, err := back.Stat(name)
	if err != nil {
		fs.Unmount()
		return err
	}
	backendBefore := info.Size
	sum0, err := checksumImage(fs, name, size)
	if err != nil {
		fs.Unmount()
		return err
	}
	t0 := time.Now()
	if err := fs.Compact(name); err != nil {
		fs.Unmount()
		return err
	}
	compactSecs := time.Since(t0).Seconds()
	info, err = back.Stat(name)
	if err != nil {
		fs.Unmount()
		return err
	}
	backendAfter := info.Size
	sum1, err := checksumImage(fs, name, size)
	if err != nil {
		fs.Unmount()
		return err
	}
	if sum0 != sum1 {
		fs.Unmount()
		return fmt.Errorf("crfsbench: compaction changed the image content (checksum %x -> %x)", sum0, sum1)
	}
	// Second compaction measures the residual dead bytes: on a minimal
	// container it reclaims nothing.
	if err := fs.Compact(name); err != nil {
		fs.Unmount()
		return err
	}
	info, err = back.Stat(name)
	if err != nil {
		fs.Unmount()
		return err
	}
	st := fs.Stats()
	if err := fs.Unmount(); err != nil {
		return err
	}
	deadBefore := float64(backendBefore-backendAfter) / float64(backendBefore)
	deadAfter := float64(backendAfter-info.Size) / float64(backendAfter)
	emit.scenario(struct {
		Scenario        string  `json:"scenario"`
		Codec           string  `json:"codec"`
		Rewrites        int     `json:"rewrites"`
		Logical         int64   `json:"logical_bytes"`
		BackendBefore   int64   `json:"backend_before"`
		BackendAfter    int64   `json:"backend_after"`
		SpaceAmpBefore  float64 `json:"space_amp_before"`
		SpaceAmpAfter   float64 `json:"space_amp_after"`
		DeadRatioBefore float64 `json:"dead_ratio_before"`
		DeadRatioAfter  float64 `json:"dead_ratio_after"`
		FramesDropped   int64   `json:"frames_dropped"`
		Reclaimed       int64   `json:"bytes_reclaimed"`
		Seconds         float64 `json:"seconds"`
	}{"compact", cdc.Name(), rewrites, size, backendBefore, backendAfter,
		float64(backendBefore) / float64(size), float64(backendAfter) / float64(size),
		deadBefore, deadAfter, st.CompactFramesDropped, st.CompactBytesReclaimed, compactSecs},
		fmt.Sprintf("compact: codec=%s rewrites=%d logical=%d backend %d -> %d bytes in %.3fs",
			cdc.Name(), rewrites, size, backendBefore, backendAfter, compactSecs),
		fmt.Sprintf("space amplification %.2fx -> %.2fx, dead-byte ratio %.1f%% -> %.2f%%, %s",
			float64(backendBefore)/float64(size), float64(backendAfter)/float64(size),
			100*deadBefore, 100*deadAfter, st.Compaction().Format()))
	if deadBefore < 0.1 {
		return fmt.Errorf("crfsbench: rewrite workload accumulated only %.1f%% dead bytes; sweep is not exercising compaction", 100*deadBefore)
	}
	if deadAfter > 0.01 {
		return fmt.Errorf("crfsbench: compaction left %.2f%% dead bytes, want ~0", 100*deadAfter)
	}

	// Phase 2: scrub scaling over a latency-injected backend. The image
	// is re-checkpointed onto the delayed backend, then every frame is
	// re-verified with 1 and 4 workers; the file is held open so the
	// timed region is pure fan-out (the open-time index scan is serial
	// either way and paid outside the clock).
	sback := memfs.New(memfs.WithReadDelay(delay))
	if err := writeImage(sback, name, cdc, size, int(chunk), entropy, crfs.Options{Codec: cdc, ChunkSize: chunk}); err != nil {
		return err
	}
	var secs [2]float64
	for i, workers := range []int{1, 4} {
		sfs, err := crfs.Mount(sback, crfs.Options{Codec: cdc, ChunkSize: chunk, IOThreads: workers})
		if err != nil {
			return err
		}
		fh, err := sfs.Open(name, crfs.ReadOnly)
		if err != nil {
			sfs.Unmount()
			return err
		}
		t0 := time.Now()
		rep, err := sfs.Scrub(crfs.ScrubOptions{})
		secs[i] = time.Since(t0).Seconds()
		if err == nil && !rep.Clean() {
			err = fmt.Errorf("crfsbench: scrub found defects in a healthy container: %s", rep.Format())
		}
		fh.Close()
		if uerr := sfs.Unmount(); err == nil {
			err = uerr
		}
		if err != nil {
			return err
		}
		emit.scenario(struct {
			Scenario string  `json:"scenario"`
			Codec    string  `json:"codec"`
			Workers  int     `json:"workers"`
			DelayUS  int64   `json:"delay_us"`
			Frames   int64   `json:"frames_verified"`
			Bytes    int64   `json:"bytes_verified"`
			Seconds  float64 `json:"seconds"`
			MBps     float64 `json:"mbps"`
		}{"scrub", cdc.Name(), workers, delay.Microseconds(), rep.Frames, rep.Bytes,
			secs[i], float64(rep.Bytes) / secs[i] / (1 << 20)},
			fmt.Sprintf("scrub: workers=%d delay=%v verified %d frames (%d bytes) in %.3fs",
				workers, delay, rep.Frames, rep.Bytes, secs[i]))
	}
	speedup := secs[0] / secs[1]
	if !emit.json {
		fmt.Printf("scrub speedup at 4 workers over 1: %.2fx\n", speedup)
	}
	if delay > 0 && speedup < 2.0 {
		return fmt.Errorf("crfsbench: scrub speedup %.2fx at 4 workers, want >= 2x on a latency-injected backend", speedup)
	}
	return nil
}

// checksumImage reads the whole logical image through the mount and
// returns a position-sensitive checksum.
func checksumImage(fs *crfs.FS, name string, size int64) (uint64, error) {
	f, err := fs.Open(name, crfs.ReadOnly)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf := make([]byte, 1<<20)
	var sum uint64
	for off := int64(0); off < size; {
		n, err := f.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			return 0, err
		}
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			sum = sum*1099511628211 + uint64(buf[i])
		}
		off += int64(n)
	}
	return sum, nil
}
