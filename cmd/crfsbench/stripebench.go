package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	crfs "crfs"
	"crfs/internal/memfs"
	"crfs/internal/server"
	"crfs/internal/stripe"
)

// stripeNode is one in-process crfsd daemon used by the hermetic striped
// sweep: a real TCP listener over an in-memory mount whose backend reads
// pay a synthetic latency, so the benchmark exercises the full protocol
// stack while the per-node read cost stays controlled.
type stripeNode struct {
	addr string
	fs   *crfs.FS
	srv  *server.Server
}

// stop kills the daemon hard: the short deadline force-closes any
// connection still open, the shape of a crashed benefactor.
func (n *stripeNode) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	n.srv.Shutdown(ctx)
	cancel()
	n.fs.Unmount()
}

func startStripeNode(delay time.Duration) (*stripeNode, error) {
	fs, err := crfs.Mount(memfs.New(memfs.WithReadDelay(delay)), crfs.Options{ChunkSize: 1 << 20})
	if err != nil {
		return nil, err
	}
	srv := server.New(fs, server.Config{
		ReadTimeout: 30 * time.Second, WriteTimeout: 30 * time.Second, IdleTimeout: time.Minute,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fs.Unmount()
		return nil, err
	}
	go srv.Serve(ln)
	return &stripeNode{addr: ln.Addr().String(), fs: fs, srv: srv}, nil
}

// compareWriter verifies a restore byte-for-byte against the expected
// payload as it streams, so a full extra copy is never buffered.
type compareWriter struct {
	want []byte
	off  int64
}

func (c *compareWriter) Write(p []byte) (int, error) {
	end := c.off + int64(len(p))
	if end > int64(len(c.want)) || !bytes.Equal(p, c.want[c.off:end]) {
		return 0, fmt.Errorf("restored bytes differ from checkpoint at offset %d", c.off)
	}
	c.off = end
	return len(p), nil
}

// stripeSweep is the hermetic striped-store benchmark: it spins up nNodes
// in-process crfsd daemons over latency-injected backends and, for each
// cluster size n = 1..nNodes, stripes one checkpoint across the first n
// nodes and times the restore. With delay > 0 the run fails unless the
// 3-node restore is at least 2x faster than single-node — the paper's
// core scaling claim, now enforced against real TCP daemons.
//
// After the sweep, two fault passes run on the full cluster: every chunk
// replica on one node is silently corrupted (the restore must stay
// byte-identical and scrub must repair to zero residual), then one
// daemon is killed outright (the restore must fail over to the surviving
// replicas).
func stripeSweep(emit *emitter, nNodes int, objSize, chunkSize int64, replicas int, delay time.Duration) error {
	if nNodes < 1 {
		return fmt.Errorf("crfsbench: -nodes must be >= 1")
	}
	if objSize < chunkSize {
		return fmt.Errorf("crfsbench: -objsize %d smaller than one stripe chunk (%d); the sweep would not stripe", objSize, chunkSize)
	}
	daemons := make([]*stripeNode, 0, nNodes)
	defer func() {
		for _, d := range daemons {
			if d != nil {
				d.stop()
			}
		}
	}()
	for i := 0; i < nNodes; i++ {
		d, err := startStripeNode(delay)
		if err != nil {
			return err
		}
		daemons = append(daemons, d)
	}

	// Scaling sweep: restore makespan at each cluster size.
	restoreSecs := make([]float64, nNodes+1)
	for n := 1; n <= nNodes; n++ {
		secs, err := stripePoint(emit, daemons[:n], objSize, chunkSize, replicas, delay)
		if err != nil {
			return err
		}
		restoreSecs[n] = secs
	}
	if delay > 0 && nNodes >= 3 {
		speedup := restoreSecs[1] / restoreSecs[3]
		if !emit.json {
			fmt.Printf("striped restore speedup at 3 nodes over 1: %.2fx\n", speedup)
		}
		if speedup < 2.0 {
			return fmt.Errorf("crfsbench: 3-node striped restore speedup %.2fx, want >= 2x on a latency-injected backend", speedup)
		}
	}

	// Fault passes need a second clean copy of every chunk to fall back to.
	if nNodes < 2 || replicas < 2 {
		if !emit.json {
			fmt.Println("skipping fault passes: need -nodes >= 2 and -replicas >= 2")
		}
		return nil
	}
	return stripeFaults(emit, daemons, objSize, chunkSize, replicas)
}

// stripePoint runs one sweep point: stripe a checkpoint over the given
// daemons, time the restore, verify it byte-for-byte, and clean up.
func stripePoint(emit *emitter, daemons []*stripeNode, objSize, chunkSize int64, replicas int, delay time.Duration) (float64, error) {
	s, nodes, err := dialStore(daemons, chunkSize, replicas)
	if err != nil {
		return 0, err
	}
	defer closeNodes(nodes)
	n := len(daemons)
	name := fmt.Sprintf("bench/sweep%d.ckpt", n)
	body := payload(name, 1, objSize)

	t0 := time.Now()
	if err := s.Put(name, bytes.NewReader(body), objSize); err != nil {
		return 0, fmt.Errorf("stripe sweep n=%d: put: %w", n, err)
	}
	putSecs := time.Since(t0).Seconds()

	cw := &compareWriter{want: body}
	t0 = time.Now()
	got, err := s.Get(name, cw)
	restoreSecs := time.Since(t0).Seconds()
	if err != nil {
		return 0, fmt.Errorf("stripe sweep n=%d: restore: %w", n, err)
	}
	if got != objSize {
		return 0, fmt.Errorf("stripe sweep n=%d: restored %d of %d bytes", n, got, objSize)
	}
	st := s.Stats()
	emit.scenario(struct {
		Scenario       string  `json:"scenario"`
		Nodes          int     `json:"nodes"`
		Replicas       int     `json:"replicas"`
		ChunkSize      int64   `json:"chunk_size"`
		DelayUS        int64   `json:"delay_us"`
		Bytes          int64   `json:"bytes"`
		PutSeconds     float64 `json:"put_seconds"`
		PutMBps        float64 `json:"put_mbps"`
		RestoreSeconds float64 `json:"restore_seconds"`
		RestoreMBps    float64 `json:"restore_mbps"`
		ChunksGot      int64   `json:"chunks_got"`
		Fallbacks      int64   `json:"replica_fallbacks"`
		ChecksumFailed int64   `json:"checksum_failed"`
	}{"stripe-restore", n, replicas, chunkSize, delay.Microseconds(), objSize,
		putSecs, float64(objSize) / putSecs / (1 << 20),
		restoreSecs, float64(objSize) / restoreSecs / (1 << 20),
		st.ChunksGot, st.ReplicaFallbacks, st.ChecksumFailed},
		fmt.Sprintf("stripe n=%d: put %.1f MB/s, restore %.1f MB/s (%d chunks, %d fallbacks)",
			n, float64(objSize)/putSecs/(1<<20), float64(objSize)/restoreSecs/(1<<20),
			st.ChunksGot, st.ReplicaFallbacks))
	if err := s.Delete(name); err != nil {
		return 0, fmt.Errorf("stripe sweep n=%d: delete: %w", n, err)
	}
	return restoreSecs, nil
}

// stripeFaults runs the corruption and kill passes over the full cluster.
func stripeFaults(emit *emitter, daemons []*stripeNode, objSize, chunkSize int64, replicas int) error {
	s, nodes, err := dialStore(daemons, chunkSize, replicas)
	if err != nil {
		return err
	}
	defer closeNodes(nodes)
	const name = "bench/fault.ckpt"
	body := payload(name, 1, objSize)
	if err := s.Put(name, bytes.NewReader(body), objSize); err != nil {
		return fmt.Errorf("stripe fault pass: put: %w", err)
	}

	// Corrupt pass: flip a byte in every replica of name's chunks that
	// lives on daemon 0, through its mount (the daemon serves the
	// corrupted bytes with a matching transport checksum — only the
	// manifest fingerprint can catch it).
	listed, err := nodes[0].List()
	if err != nil {
		return err
	}
	corrupted := 0
	for _, o := range listed {
		if obj, _, kind := stripe.ParseObjectName(o); kind == stripe.KindChunk && obj == name {
			if err := corruptObject(daemons[0].fs, o); err != nil {
				return fmt.Errorf("corrupting %s: %w", o, err)
			}
			corrupted++
		}
	}
	if corrupted == 0 {
		return fmt.Errorf("stripe fault pass: no chunks of %s on node 0; placement broken", name)
	}
	before := s.Stats()
	cw := &compareWriter{want: body}
	if got, err := s.Get(name, cw); err != nil || got != objSize {
		return fmt.Errorf("stripe corrupt pass: restore over %d corrupted replicas: got %d bytes, err %v", corrupted, got, err)
	}
	after := s.Stats()
	if after.ChecksumFailed == before.ChecksumFailed {
		return fmt.Errorf("stripe corrupt pass: corruption of %d replicas went undetected", corrupted)
	}
	rep1, err := s.Scrub()
	if err != nil {
		return fmt.Errorf("stripe corrupt pass: scrub: %w (%s)", err, rep1)
	}
	rep2, err := s.Scrub()
	if err != nil {
		return fmt.Errorf("stripe corrupt pass: second scrub: %w (%s)", err, rep2)
	}
	residual := rep2.ChunksRepaired + rep2.LostChunks + rep2.ManifestsFixed
	emit.scenario(struct {
		Scenario       string `json:"scenario"`
		Corrupted      int    `json:"replicas_corrupted"`
		ChecksumFailed int64  `json:"checksum_failed"`
		Repaired       int    `json:"chunks_repaired"`
		Residual       int    `json:"residual_defects"`
	}{"stripe-corrupt", corrupted, after.ChecksumFailed - before.ChecksumFailed, rep1.ChunksRepaired, residual},
		fmt.Sprintf("stripe corrupt pass: %d replicas corrupted, restore byte-identical, scrub repaired %d, residual %d",
			corrupted, rep1.ChunksRepaired, residual))
	if rep1.ChunksRepaired == 0 {
		return fmt.Errorf("stripe corrupt pass: scrub repaired nothing after %d corruptions", corrupted)
	}
	if residual != 0 {
		return fmt.Errorf("stripe corrupt pass: %d defects survived the repair scrub", residual)
	}

	// Kill pass: take the last daemon down hard and restore through the
	// survivors.
	daemons[len(daemons)-1].stop()
	daemons = daemons[:len(daemons)-1]
	before = s.Stats()
	cw = &compareWriter{want: body}
	if got, err := s.Get(name, cw); err != nil || got != objSize {
		return fmt.Errorf("stripe kill pass: restore with a dead node: got %d bytes, err %v", got, err)
	}
	after = s.Stats()
	emit.scenario(struct {
		Scenario  string `json:"scenario"`
		Fallbacks int64  `json:"replica_fallbacks"`
	}{"stripe-kill", after.ReplicaFallbacks - before.ReplicaFallbacks},
		fmt.Sprintf("stripe kill pass: restore byte-identical through a dead node (%d fallbacks)",
			after.ReplicaFallbacks-before.ReplicaFallbacks))
	return nil
}

// corruptObject flips one byte in the middle of a stored object through
// the daemon's own mount.
func corruptObject(fs *crfs.FS, name string) error {
	info, err := fs.Stat(name)
	if err != nil {
		return err
	}
	f, err := fs.Open(name, crfs.ReadWrite)
	if err != nil {
		return err
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, info.Size/2); err != nil {
		return err
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, info.Size/2); err != nil {
		return err
	}
	return nil
}

func dialStore(daemons []*stripeNode, chunkSize int64, replicas int) (*stripe.Store, []stripe.Node, error) {
	nodes := make([]stripe.Node, 0, len(daemons))
	for _, d := range daemons {
		n, err := stripe.DialNode(d.addr, 2)
		if err != nil {
			closeNodes(nodes)
			return nil, nil, err
		}
		nodes = append(nodes, n)
	}
	return stripe.New(stripe.Config{ChunkSize: chunkSize, Replicas: replicas}, nodes...), nodes, nil
}

func closeNodes(nodes []stripe.Node) {
	for _, n := range nodes {
		n.Close()
	}
}

// stripeRealBench runs one striped operation against real crfsd daemons,
// for CI and operators: put writes a deterministic self-verifying
// checkpoint, restore reads it back and fails on any byte difference,
// scrub verifies and repairs every replica. Unreachable nodes are
// reported and skipped, so a restore after a node kill still works.
func stripeRealBench(emit *emitter, addrs []string, op string, objSize, chunkSize int64, replicas int) error {
	var nodes []stripe.Node
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		n, err := stripe.DialNode(a, 2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crfsbench: stripe node %s unreachable, continuing without it: %v\n", a, err)
			continue
		}
		nodes = append(nodes, n)
	}
	defer closeNodes(nodes)
	if len(nodes) == 0 {
		return fmt.Errorf("crfsbench: no stripe nodes reachable")
	}
	s := stripe.New(stripe.Config{ChunkSize: chunkSize, Replicas: replicas}, nodes...)
	const name = "bench/striped.ckpt"
	switch op {
	case "put":
		body := payload(name, 1, objSize)
		t0 := time.Now()
		if err := s.Put(name, bytes.NewReader(body), objSize); err != nil {
			return err
		}
		secs := time.Since(t0).Seconds()
		st := s.Stats()
		emit.scenario(struct {
			Scenario  string  `json:"scenario"`
			Nodes     int     `json:"nodes"`
			Replicas  int     `json:"replicas"`
			Bytes     int64   `json:"bytes"`
			Seconds   float64 `json:"seconds"`
			MBps      float64 `json:"mbps"`
			ChunksPut int64   `json:"chunks_put"`
			BytesPut  int64   `json:"bytes_put"`
		}{"stripe-put", len(nodes), replicas, objSize, secs,
			float64(objSize) / secs / (1 << 20), st.ChunksPut, st.BytesPut},
			fmt.Sprintf("stripe put: %d bytes over %d nodes in %.3fs (%.1f MB/s, %d chunk replicas)",
				objSize, len(nodes), secs, float64(objSize)/secs/(1<<20), st.ChunksPut))
	case "restore":
		cw := &compareWriter{want: payload(name, 1, objSize)}
		t0 := time.Now()
		got, err := s.Get(name, cw)
		secs := time.Since(t0).Seconds()
		if err != nil {
			return err
		}
		if got != objSize {
			return fmt.Errorf("crfsbench: restored %d bytes, want %d (is -objsize the same as at put?)", got, objSize)
		}
		st := s.Stats()
		emit.scenario(struct {
			Scenario       string  `json:"scenario"`
			Nodes          int     `json:"nodes"`
			Bytes          int64   `json:"bytes"`
			Seconds        float64 `json:"seconds"`
			MBps           float64 `json:"mbps"`
			Fallbacks      int64   `json:"replica_fallbacks"`
			ChecksumFailed int64   `json:"checksum_failed"`
		}{"stripe-restore", len(nodes), got, secs, float64(got) / secs / (1 << 20),
			st.ReplicaFallbacks, st.ChecksumFailed},
			fmt.Sprintf("stripe restore: %d bytes byte-identical over %d nodes in %.3fs (%.1f MB/s, %d fallbacks)",
				got, len(nodes), secs, float64(got)/secs/(1<<20), st.ReplicaFallbacks))
	case "scrub":
		rep, err := s.Scrub()
		emit.scenario(struct {
			Scenario    string `json:"scenario"`
			Objects     int    `json:"objects"`
			Verified    int    `json:"chunks_verified"`
			Repaired    int    `json:"chunks_repaired"`
			Manifests   int    `json:"manifests_fixed"`
			Strays      int    `json:"strays_deleted"`
			Lost        int    `json:"lost_chunks"`
			Unreachable int    `json:"unreachable_nodes"`
		}{"stripe-scrub", rep.Objects, rep.ChunksVerified, rep.ChunksRepaired,
			rep.ManifestsFixed, rep.StraysDeleted, rep.LostChunks, rep.UnreachableNodes},
			"stripe scrub: "+rep.String())
		return err
	default:
		return fmt.Errorf("crfsbench: unknown -stripe-op %q (want put, restore, or scrub)", op)
	}
	return nil
}
