// Command crfsd serves a CRFS mount over TCP: remote checkpoint writers
// stream their images to the daemon, which aggregates them through CRFS
// before they reach the backing directory. It plays the role a
// CRFS-mounted staging node plays in the paper's deployment.
//
// Protocol (one request per connection, line-oriented header):
//
//	PUT <name> <size>\n<size bytes>   -> "OK <bytes>\n"
//	GET <name>\n                      -> "OK <size>\n<size bytes>"
//	STAT\n                            -> one line of mount statistics
//
// Usage:
//
//	crfsd -dir /scratch/ckpt -addr :9000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"strings"

	crfs "crfs"
)

func main() {
	dir := flag.String("dir", ".", "backing directory")
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	chunk := flag.Int64("chunk", crfs.DefaultChunkSize, "chunk size")
	pool := flag.Int64("pool", crfs.DefaultBufferPoolSize, "buffer pool size")
	threads := flag.Int("threads", crfs.DefaultIOThreads, "IO threads")
	codecName := flag.String("codec", "raw", "chunk codec: "+strings.Join(crfs.CodecNames(), "|"))
	readAhead := flag.Int("readahead", 8, "read-ahead depth for GET streams, in chunks/frames (0 disables)")
	repair := flag.Bool("repair", false, "truncate torn frame containers to their intact prefix on first open (crash recovery)")
	flag.Parse()

	cdc, err := crfs.LookupCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	fs, err := crfs.MountDir(*dir, crfs.Options{
		ChunkSize: *chunk, BufferPoolSize: *pool, IOThreads: *threads, Codec: cdc,
		ReadAhead: *readAhead, RepairOnOpen: *repair,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("crfsd: serving %s on %s (chunk=%d pool=%d threads=%d codec=%s readahead=%d repair=%v)",
		*dir, ln.Addr(), *chunk, *pool, *threads, cdc.Name(), *readAhead, *repair)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go serve(fs, conn)
	}
}

func serve(fs *crfs.FS, conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		fmt.Fprintf(conn, "ERR empty request\n")
		return
	}
	switch fields[0] {
	case "PUT":
		if len(fields) != 3 {
			fmt.Fprintf(conn, "ERR usage: PUT name size\n")
			return
		}
		var size int64
		if _, err := fmt.Sscanf(fields[2], "%d", &size); err != nil || size < 0 {
			fmt.Fprintf(conn, "ERR bad size\n")
			return
		}
		n, err := put(fs, fields[1], size, r)
		if err != nil {
			fmt.Fprintf(conn, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(conn, "OK %d\n", n)
	case "GET":
		if len(fields) != 2 {
			fmt.Fprintf(conn, "ERR usage: GET name\n")
			return
		}
		if err := get(fs, fields[1], conn); err != nil {
			fmt.Fprintf(conn, "ERR %v\n", err)
		}
	case "STAT":
		st := fs.Stats()
		fmt.Fprintf(conn, "writes=%d backend=%d ratio=%.1f bytes=%d poolwaits=%d codec_in=%d codec_out=%d codec_ratio=%.2f salvaged=%d repaired=%d failed_chunks=%d\n",
			st.Writes, st.BackendWrites, st.AggregationRatio(), st.BytesWritten, st.PoolWaits,
			st.CodecBytesIn, st.CodecBytesOut, st.CompressionRatio(),
			st.ContainersSalvaged, st.ContainersRepaired, st.FailedChunks)
	default:
		fmt.Fprintf(conn, "ERR unknown verb %q\n", fields[0])
	}
}

func put(fs *crfs.FS, name string, size int64, r io.Reader) (int64, error) {
	f, err := fs.Open(name, crfs.WriteOnly|crfs.Create|crfs.Trunc)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 64<<10)
	var off int64
	for off < size {
		want := int64(len(buf))
		if size-off < want {
			want = size - off
		}
		n, err := io.ReadFull(r, buf[:want])
		if n > 0 {
			if _, werr := f.WriteAt(buf[:n], off); werr != nil {
				f.Close()
				return off, werr
			}
			off += int64(n)
		}
		if err != nil {
			f.Close()
			return off, err
		}
	}
	return off, f.Close()
}

func get(fs *crfs.FS, name string, conn net.Conn) error {
	f, err := fs.Open(name, crfs.ReadOnly)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(conn, "OK %d\n", info.Size)
	buf := make([]byte, 64<<10)
	var off int64
	for off < info.Size {
		want := int64(len(buf))
		if info.Size-off < want {
			want = info.Size - off
		}
		n, err := f.ReadAt(buf[:want], off)
		if n > 0 {
			if _, werr := conn.Write(buf[:n]); werr != nil {
				return werr
			}
			off += int64(n)
		}
		if err != nil && err != io.EOF {
			return err
		}
		if n == 0 {
			break
		}
	}
	return nil
}
