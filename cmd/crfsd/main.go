// Command crfsd serves a CRFS mount over TCP: remote checkpoint writers
// stream their images to the daemon, which aggregates them through CRFS
// before they reach the backing directory. It plays the role a
// CRFS-mounted staging node plays in the paper's deployment.
//
// Protocol (one request per connection, line-oriented header):
//
//	PUT <name> <size>\n<size bytes>   -> "OK <bytes>\n"
//	GET <name>\n                      -> "OK <size>\n<size bytes>"
//	STAT\n                            -> one line of mount statistics
//	SCRUB\n                           -> verify every container's frames
//	                                     (fanned across the IO workers)
//	                                     and report one summary line
//
// STAT reports the write/codec counters plus the recovery, compaction,
// and scrub counters (containers salvaged/repaired at open, containers
// compacted and bytes reclaimed, frames scrub-verified).
//
// With -compact-ratio the daemon compacts rewrite-heavy containers
// online: after each PUT (and on the -compact-interval cadence) any
// container whose dead-byte ratio crosses the threshold is rewritten to
// its minimal equivalent via a crash-safe temp-write + rename replace.
//
// Usage:
//
//	crfsd -dir /scratch/ckpt -addr :9000
//	crfsd -dir /scratch/ckpt -codec deflate -compact-ratio 0.3 -compact-interval 1m
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"strings"

	crfs "crfs"
)

func main() {
	dir := flag.String("dir", ".", "backing directory")
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	chunk := flag.Int64("chunk", crfs.DefaultChunkSize, "chunk size")
	pool := flag.Int64("pool", crfs.DefaultBufferPoolSize, "buffer pool size")
	threads := flag.Int("threads", crfs.DefaultIOThreads, "IO threads")
	codecName := flag.String("codec", "raw", "chunk codec: "+strings.Join(crfs.CodecNames(), "|"))
	readAhead := flag.Int("readahead", 8, "read-ahead depth for GET streams, in chunks/frames (0 disables)")
	repair := flag.Bool("repair", false, "truncate torn frame containers to their intact prefix on first open (crash recovery)")
	compactRatio := flag.Float64("compact-ratio", 0, "dead-byte ratio that triggers online container compaction after PUTs (0 disables)")
	compactMin := flag.Int64("compact-min-bytes", 1<<20, "minimum reclaimable bytes before a container is compacted")
	compactEvery := flag.Duration("compact-interval", 0, "background re-check cadence for open containers (0 disables the background pass)")
	flag.Parse()

	cdc, err := crfs.LookupCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	fs, err := crfs.MountDir(*dir, crfs.Options{
		ChunkSize: *chunk, BufferPoolSize: *pool, IOThreads: *threads, Codec: cdc,
		ReadAhead: *readAhead, RepairOnOpen: *repair,
		Compaction: crfs.CompactionPolicy{
			MinDeadRatio: *compactRatio, MinDeadBytes: *compactMin, Interval: *compactEvery,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("crfsd: serving %s on %s (chunk=%d pool=%d threads=%d codec=%s readahead=%d repair=%v compact-ratio=%v)",
		*dir, ln.Addr(), *chunk, *pool, *threads, cdc.Name(), *readAhead, *repair, *compactRatio)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go serve(fs, conn)
	}
}

func serve(fs *crfs.FS, conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		fmt.Fprintf(conn, "ERR empty request\n")
		return
	}
	switch fields[0] {
	case "PUT":
		if len(fields) != 3 {
			fmt.Fprintf(conn, "ERR usage: PUT name size\n")
			return
		}
		var size int64
		if _, err := fmt.Sscanf(fields[2], "%d", &size); err != nil || size < 0 {
			fmt.Fprintf(conn, "ERR bad size\n")
			return
		}
		n, err := put(fs, fields[1], size, r)
		if err != nil {
			fmt.Fprintf(conn, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(conn, "OK %d\n", n)
	case "GET":
		if len(fields) != 2 {
			fmt.Fprintf(conn, "ERR usage: GET name\n")
			return
		}
		if err := get(fs, fields[1], conn); err != nil {
			fmt.Fprintf(conn, "ERR %v\n", err)
		}
	case "STAT":
		st := fs.Stats()
		fmt.Fprintf(conn, "writes=%d backend=%d ratio=%.1f bytes=%d poolwaits=%d codec_in=%d codec_out=%d codec_ratio=%.2f "+
			"scanned=%d salvaged=%d repaired=%d salvage_frames_dropped=%d salvage_bytes_truncated=%d failed_chunks=%d "+
			"compacted=%d compact_frames_dropped=%d compact_bytes_reclaimed=%d "+
			"frames_verified=%d scrub_corruptions=%d scrub_repaired=%d "+
			"checksum_verified=%d checksum_failed=%d checksum_skipped=%d\n",
			st.Writes, st.BackendWrites, st.AggregationRatio(), st.BytesWritten, st.PoolWaits,
			st.CodecBytesIn, st.CodecBytesOut, st.CompressionRatio(),
			st.ContainersScanned, st.ContainersSalvaged, st.ContainersRepaired,
			st.SalvageFramesDropped, st.SalvageBytesTruncated, st.FailedChunks,
			st.ContainersCompacted, st.CompactFramesDropped, st.CompactBytesReclaimed,
			st.FramesVerified, st.ScrubCorruptions, st.ScrubRepaired,
			st.ChecksumVerified, st.ChecksumFailed, st.ChecksumSkipped)
	case "SCRUB":
		rep, err := fs.Scrub(crfs.ScrubOptions{})
		if err != nil {
			fmt.Fprintf(conn, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(conn, "OK containers=%d frames=%d bytes=%d corrupt_frames=%d torn=%d clean=%v\n",
			rep.Containers, rep.Frames, rep.Bytes, rep.CorruptFrames, rep.TornContainers, rep.Clean())
	default:
		fmt.Fprintf(conn, "ERR unknown verb %q\n", fields[0])
	}
}

func put(fs *crfs.FS, name string, size int64, r io.Reader) (int64, error) {
	f, err := fs.Open(name, crfs.WriteOnly|crfs.Create|crfs.Trunc)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 64<<10)
	var off int64
	for off < size {
		want := int64(len(buf))
		if size-off < want {
			want = size - off
		}
		n, err := io.ReadFull(r, buf[:want])
		if n > 0 {
			if _, werr := f.WriteAt(buf[:n], off); werr != nil {
				f.Close()
				return off, werr
			}
			off += int64(n)
		}
		if err != nil {
			f.Close()
			return off, err
		}
	}
	return off, f.Close()
}

func get(fs *crfs.FS, name string, conn net.Conn) error {
	f, err := fs.Open(name, crfs.ReadOnly)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(conn, "OK %d\n", info.Size)
	buf := make([]byte, 64<<10)
	var off int64
	for off < info.Size {
		want := int64(len(buf))
		if info.Size-off < want {
			want = info.Size - off
		}
		n, err := f.ReadAt(buf[:want], off)
		if n > 0 {
			if _, werr := conn.Write(buf[:n]); werr != nil {
				return werr
			}
			off += int64(n)
		}
		if err != nil && err != io.EOF {
			return err
		}
		if n == 0 {
			break
		}
	}
	return nil
}
