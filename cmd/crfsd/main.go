// Command crfsd serves a CRFS mount over TCP: remote checkpoint writers
// stream their images to the daemon, which aggregates them through CRFS
// before they reach the backing directory. It plays the role a
// CRFS-mounted staging node plays in the paper's deployment.
//
// Connections carry the framed, multiplexed protocol v2 (see
// internal/server): a persistent connection serves many concurrent
// requests, PUT bodies stream straight into the CRFS write pipeline
// under backpressure, and a failed or abandoned PUT never leaves a
// partial file visible under the target name. The legacy one-shot v1
// line protocol (PUT/GET/STAT/SCRUB lines, raw bodies) is still served
// to old clients, with its wire-level error handling fixed.
//
// The daemon is shaped for heavy concurrent traffic: a global
// connection cap, a per-connection in-flight request cap, read/write
// deadlines that reap stalled clients, accept-loop backoff, and a
// graceful drain on SIGTERM/SIGINT — stop accepting, finish in-flight
// requests, close the filesystem, exit 0. With -metrics it also serves
// the full Stats tree in Prometheus text format at /metrics.
//
// With -trace the daemon records spans for every request and every
// stage of the IO pipeline into an in-memory ring, joined to the
// client's trace when the request line carries a propagated trace ID;
// clients fetch the ring with the TRACE verb (crfscp -trace merges the
// dumps of a whole striped store into one chrome://tracing file).
// -debug-addr serves live introspection: /metrics (counters plus
// latency histograms), /debug/pprof/ (CPU, heap, contention profiles),
// and /debug/trace (the ring as a chrome://tracing document). -slow-ms
// logs any traced request slower than the threshold with its full span
// tree.
//
// With -compact-ratio the daemon compacts rewrite-heavy containers
// online: after each PUT (and on the -compact-interval cadence) any
// container whose dead-byte ratio crosses the threshold is rewritten to
// its minimal equivalent via a crash-safe temp-write + rename replace.
//
// Usage:
//
//	crfsd -dir /scratch/ckpt -addr :9000 -metrics 127.0.0.1:9100
//	crfsd -dir /scratch/ckpt -codec deflate -compact-ratio 0.3 -compact-interval 1m
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	crfs "crfs"
	"crfs/internal/obs"
	"crfs/internal/server"
)

func main() {
	dir := flag.String("dir", ".", "backing directory")
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	chunk := flag.Int64("chunk", crfs.DefaultChunkSize, "chunk size")
	pool := flag.Int64("pool", crfs.DefaultBufferPoolSize, "buffer pool size")
	threads := flag.Int("threads", crfs.DefaultIOThreads, "IO threads")
	codecName := flag.String("codec", "raw", "chunk codec: "+strings.Join(crfs.CodecNames(), "|"))
	readAhead := flag.Int("readahead", 8, "read-ahead depth for GET streams, in chunks/frames (0 disables)")
	repair := flag.Bool("repair", false, "truncate torn frame containers to their intact prefix on first open (crash recovery)")
	compactRatio := flag.Float64("compact-ratio", 0, "dead-byte ratio that triggers online container compaction after PUTs (0 disables)")
	compactMin := flag.Int64("compact-min-bytes", 1<<20, "minimum reclaimable bytes before a container is compacted")
	compactEvery := flag.Duration("compact-interval", 0, "background re-check cadence for open containers (0 disables the background pass)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus metrics on this address at /metrics (empty disables)")
	debugAddr := flag.String("debug-addr", "", "serve live introspection on this address: /metrics, /debug/pprof/, /debug/trace (empty disables)")
	trace := flag.Bool("trace", false, "record pipeline and request spans into the in-memory trace ring")
	traceRing := flag.Int("trace-ring", obs.DefaultRingCapacity, "trace ring capacity in spans (oldest evicted first)")
	slowMS := flag.Int("slow-ms", 0, "log any traced request slower than this many milliseconds, with its span tree (0 disables)")
	maxConns := flag.Int("max-conns", server.DefaultMaxConns, "cap on concurrently served connections")
	maxInFlight := flag.Int("max-inflight", server.DefaultMaxInFlight, "cap on concurrent requests per connection")
	maxPutBytes := flag.Int64("max-put-bytes", 0, "reject PUTs declaring a larger body (0 = unlimited)")
	readTimeout := flag.Duration("read-timeout", server.DefaultReadTimeout, "per-read deadline while a request body is being streamed")
	writeTimeout := flag.Duration("write-timeout", server.DefaultWriteTimeout, "per-write deadline toward clients")
	idleTimeout := flag.Duration("idle-timeout", server.DefaultIdleTimeout, "close connections idle this long")
	sweepInterval := flag.Duration("sweep-interval", server.DefaultSweepInterval, "background cadence for removing aborted-PUT staging temps (negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight requests")
	flag.Parse()

	cdc, err := crfs.LookupCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	// One tracer spans the whole daemon: the mount's IO pipeline and the
	// server's request handling land in the same ring, so a TRACE dump
	// (or /debug/trace) shows a request end to end.
	tr := obs.New(*traceRing)
	tr.SetProcess("crfsd:" + *addr)
	tr.SetEnabled(*trace)
	if *slowMS > 0 {
		tr.SetSlowThreshold(time.Duration(*slowMS) * time.Millisecond)
		tr.SetLogf(log.Printf)
	}
	fs, err := crfs.MountDir(*dir, crfs.Options{
		ChunkSize: *chunk, BufferPoolSize: *pool, IOThreads: *threads, Codec: cdc,
		ReadAhead: *readAhead, RepairOnOpen: *repair,
		Compaction: crfs.CompactionPolicy{
			MinDeadRatio: *compactRatio, MinDeadBytes: *compactMin, Interval: *compactEvery,
		},
		Tracer: tr,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(fs, server.Config{
		Tracer:        tr,
		MaxConns:      *maxConns,
		MaxInFlight:   *maxInFlight,
		MaxPutBytes:   *maxPutBytes,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		IdleTimeout:   *idleTimeout,
		SweepInterval: *sweepInterval,
		Logf:          log.Printf,
	})
	if n, err := srv.SweepStaging(); err != nil {
		log.Printf("crfsd: sweeping staging temps: %v", err)
	} else if n > 0 {
		log.Printf("crfsd: removed %d stale staging temp(s)", n)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	var msrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		msrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("crfsd: metrics server: %v", err)
			}
		}()
		log.Printf("crfsd: metrics on http://%s/metrics", mln.Addr())
	}

	// The debug endpoint is live introspection for a running daemon: the
	// Prometheus exposition (counters + latency histograms), the Go
	// pprof profiles, and the trace ring rendered as a chrome://tracing
	// document.
	var dsrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write(obs.ChromeTrace(tr.Snapshot()))
		})
		dsrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := dsrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				log.Printf("crfsd: debug server: %v", err)
			}
		}()
		log.Printf("crfsd: debug on http://%s (/metrics /debug/pprof/ /debug/trace)", dln.Addr())
	}

	log.Printf("crfsd: serving %s on %s (chunk=%d pool=%d threads=%d codec=%s readahead=%d repair=%v compact-ratio=%v max-conns=%d max-inflight=%d)",
		*dir, ln.Addr(), *chunk, *pool, *threads, cdc.Name(), *readAhead, *repair, *compactRatio, *maxConns, *maxInFlight)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("crfsd: %v: draining (timeout %v)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatalf("crfsd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("crfsd: drain incomplete, connections torn down: %v", err)
	}
	if msrv != nil {
		msrv.Close()
	}
	if dsrv != nil {
		dsrv.Close()
	}
	if err := fs.Unmount(); err != nil {
		log.Fatalf("crfsd: unmount: %v", err)
	}
	log.Printf("crfsd: drained, exiting")
}
