// Command crfsck is the offline container checker for CRFS backing
// directories: a parallel scrub (re-verify every frame of every frame
// container, pFSCK-style fan-out across workers) and an offline
// compactor (rewrite log-structured containers to their minimal
// equivalent, reclaiming the dead bytes rewrite-heavy checkpoint
// workloads accumulate).
//
// Usage:
//
//	crfsck [-workers 4] DIR...              scrub (verify only)
//	crfsck -repair DIR...                   scrub, truncating damaged
//	                                        containers to their longest
//	                                        verified frame prefix
//	crfsck -compact [-ratio 0.0] DIR...     scrub, then compact every
//	                                        container at or above the
//	                                        dead-byte ratio (also sweeps
//	                                        stray compaction temps)
//
// Exit status follows fsck convention: 0 when every container is clean
// (and nothing needed compaction repair), 2 when defects were found,
// 1 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"crfs/internal/compact"
	"crfs/internal/osfs"
)

func main() {
	workers := flag.Int("workers", 4, "parallel frame verifiers")
	repair := flag.Bool("repair", false, "truncate damaged containers to their longest verified frame prefix")
	doCompact := flag.Bool("compact", false, "compact containers after scrubbing (rewrites reclaim dead frames and torn junk)")
	ratio := flag.Float64("ratio", 0, "with -compact: only compact containers whose dead-byte ratio is at least this (0 = any reclaimable bytes)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: crfsck [-workers N] [-repair] [-compact [-ratio R]] DIR...")
		os.Exit(1)
	}
	defects, opErrs := false, false
	for _, dir := range flag.Args() {
		fsys, err := osfs.New(dir)
		if err != nil {
			fatal(err)
		}
		rep, err := compact.Scrub(fsys, ".", compact.ScrubOptions{Workers: *workers, Repair: *repair})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %s", dir, rep.Format())
		// Exit-code classification: proven damage (corrupt frames, torn
		// containers) is a defect; a file that could not be verified at
		// all (backend open/read failure) is an operational error, never
		// reported as corruption.
		if rep.CorruptFrames > 0 || rep.TornContainers > 0 {
			defects = true
		}
		for _, p := range rep.Problems {
			if p.Err != "" {
				opErrs = true
			}
		}
		if *doCompact {
			crep, err := compact.CompactDir(fsys, ".", compact.CompactOptions{MinDeadRatio: *ratio})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: %s", dir, crep.Format())
			if len(crep.Problems) > 0 {
				opErrs = true
			}
		}
	}
	switch {
	case defects:
		os.Exit(2)
	case opErrs:
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crfsck:", err)
	os.Exit(1)
}
