// Command crfscp copies files into a directory through a CRFS mount,
// demonstrating the real library on real storage: many small source reads
// become few large aggregated writes on the destination filesystem.
//
// Usage:
//
//	crfscp [-chunk 4194304] [-pool 16777216] [-threads 4] [-bs 8192] [-codec raw|deflate] SRC... DSTDIR
//	crfscp -restore [-readahead 8] [-repair] SRC... DSTDIR
//	crfscp -server host:9000 SRC...           (upload to a crfsd daemon)
//	crfscp -server host:9000 -restore NAME... DSTDIR
//	crfscp -nodes host1:9000,host2:9000,host3:9000 [-replicas 2] SRC...
//	crfscp -nodes host1:9000,host2:9000,host3:9000 -restore NAME... DSTDIR
//	crfscp -nodes host1:9000,host2:9000,host3:9000 -scrub
//
// -server switches to network mode: sources are streamed to a crfsd
// daemon over one persistent protocol-v2 connection instead of a local
// mount. With -restore, each NAME is fetched from the daemon into
// DSTDIR.
//
// -nodes switches to striped mode: each source is split into
// -stripe-chunk sized chunks placed across the listed crfsd daemons
// with -replicas copies each, behind a fully replicated per-checkpoint
// manifest (see internal/stripe). Restores stream chunks from all
// nodes in parallel and verify every chunk against its manifest
// fingerprint, failing over between replicas, so any single node can
// be down or corrupted without affecting the restored bytes. -scrub
// verifies every replica on every node and repairs bad copies from
// good ones.
//
// -repair enables crash recovery on open: a frame container with a torn
// tail (a power cut mid-checkpoint) is truncated to its longest intact
// frame prefix instead of being re-salvaged on every mount.
//
// With -codec deflate the destination files are CRFS frame containers:
// chunks are compressed in parallel on the IO workers, cutting the bytes
// written to the destination filesystem. Read them back through a CRFS
// mount (any codec setting), which decodes containers transparently.
//
// -trace FILE records the whole operation as spans — crfscp's own
// copy/restore spans, the CRFS pipeline's write/encode/backend spans,
// and (in network modes) every participating daemon's request and
// pipeline spans, fetched over the TRACE verb and joined by the
// propagated trace IDs — and writes them as one chrome://tracing JSON
// document: open it at chrome://tracing or https://ui.perfetto.dev.
//
// -restore runs the opposite direction (the restart half of C/R): each
// SRC is read sequentially *through* a CRFS mount over its directory —
// decoding frame containers transparently, with -readahead chunks/frames
// prefetched in parallel on the IO workers — and written to DSTDIR as a
// plain file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	crfs "crfs"
	"crfs/internal/client"
	"crfs/internal/obs"
	"crfs/internal/stripe"
)

// traceRun is the -trace plumbing: a local tracer recording crfscp's
// own spans, the trace IDs of each operation's root span, and the
// output path. A nil *traceRun is the disabled state — every method is
// a no-op — so call sites need no conditionals.
type traceRun struct {
	tr     *obs.Tracer
	traces []obs.TraceID
	file   string
}

func newTraceRun(file string) *traceRun {
	if file == "" {
		return nil
	}
	tr := obs.New(obs.DefaultRingCapacity)
	tr.SetProcess("crfscp")
	tr.SetEnabled(true)
	return &traceRun{tr: tr, file: file}
}

// tracer returns the run's tracer, nil when tracing is off (nil
// selects the disabled obs.Default in mount and stripe configs).
func (t *traceRun) tracer() *obs.Tracer {
	if t == nil {
		return nil
	}
	return t.tr
}

// span opens a root span for one operation and remembers its trace ID
// for the final per-node dump collection.
func (t *traceRun) span(name, file string) obs.Span {
	if t == nil {
		return obs.Span{}
	}
	sp := t.tr.Start(name)
	sp.Attr("file", file)
	t.traces = append(t.traces, sp.Context().Trace)
	return sp
}

// write merges crfscp's own spans with each operation trace's spans
// fetched from the participating daemons (dump, nil for local-only
// modes) and writes the whole run as one chrome://tracing document.
func (t *traceRun) write(dump func(obs.TraceID) []obs.SpanRecord) error {
	if t == nil {
		return nil
	}
	recs := t.tr.Snapshot()
	if dump != nil {
		seen := make(map[obs.TraceID]bool)
		for _, id := range t.traces {
			if id == 0 || seen[id] {
				continue
			}
			seen[id] = true
			recs = append(recs, dump(id)...)
		}
	}
	if err := os.WriteFile(t.file, obs.ChromeTrace(recs), 0o644); err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	fmt.Printf("trace: %d spans -> %s\n", len(recs), t.file)
	return nil
}

// setSpanContext plants a trace context on a mount file handle so the
// core pipeline's spans join the operation's trace.
func setSpanContext(f crfs.File, ctx obs.SpanContext) {
	if !ctx.Valid() {
		return
	}
	if t, ok := f.(interface{ SetSpanContext(obs.SpanContext) }); ok {
		t.SetSpanContext(ctx)
	}
}

func main() {
	chunk := flag.Int64("chunk", crfs.DefaultChunkSize, "CRFS chunk size in bytes")
	pool := flag.Int64("pool", crfs.DefaultBufferPoolSize, "CRFS buffer pool size in bytes")
	threads := flag.Int("threads", crfs.DefaultIOThreads, "CRFS IO threads")
	bs := flag.Int("bs", 8192, "copy block size (simulates small checkpoint writes)")
	codecName := flag.String("codec", "raw", "chunk codec: "+strings.Join(crfs.CodecNames(), "|"))
	restore := flag.Bool("restore", false, "restore direction: read SRC files through a CRFS mount, write plain copies to DSTDIR")
	readAhead := flag.Int("readahead", 8, "with -restore: read-ahead depth in chunks/frames (0 disables)")
	repair := flag.Bool("repair", false, "truncate torn frame containers to their intact prefix on first open (crash recovery)")
	serverAddr := flag.String("server", "", "copy to/from a crfsd daemon at this address instead of a local mount")
	nodesList := flag.String("nodes", "", "comma-separated crfsd addresses: stripe across these daemons instead of a single server")
	replicas := flag.Int("replicas", stripe.DefaultReplicas, "with -nodes: copies of each chunk")
	stripeChunk := flag.Int64("stripe-chunk", stripe.DefaultChunkSize, "with -nodes: stripe unit in bytes")
	scrub := flag.Bool("scrub", false, "with -nodes: verify every replica against its manifest fingerprint and repair bad copies")
	redials := flag.Int("redials", 2, "network modes: automatic reconnects per daemon connection")
	traceFile := flag.String("trace", "", "write a chrome://tracing JSON of the whole operation — crfscp's spans merged with every participating daemon's — to this file")
	flag.Parse()
	args := flag.Args()
	trun := newTraceRun(*traceFile)
	if *nodesList != "" {
		err := stripedMode(strings.Split(*nodesList, ","), *restore, *scrub, stripe.Config{
			ChunkSize: *stripeChunk, Replicas: *replicas, Tracer: trun.tracer(),
		}, *redials, args, trun)
		if err != nil {
			fatal(err)
		}
		return
	}
	if *serverAddr != "" {
		if err := serverMode(*serverAddr, *restore, *redials, args, trun); err != nil {
			fatal(err)
		}
		return
	}
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: crfscp [flags] SRC... DSTDIR")
		os.Exit(2)
	}
	dst := args[len(args)-1]
	srcs := args[:len(args)-1]
	if err := os.MkdirAll(dst, 0o755); err != nil {
		fatal(err)
	}
	if *restore {
		if err := restoreAll(srcs, dst, *bs, *chunk, *pool, *threads, *readAhead, *repair, trun); err != nil {
			fatal(err)
		}
		return
	}
	cdc, err := crfs.LookupCodec(*codecName)
	if err != nil {
		fatal(err)
	}
	fs, err := crfs.MountDir(dst, crfs.Options{
		ChunkSize: *chunk, BufferPoolSize: *pool, IOThreads: *threads, Codec: cdc,
		RepairOnOpen: *repair, Tracer: trun.tracer(),
	})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	var total int64
	for _, src := range srcs {
		sp := trun.span("crfscp.copy", src)
		n, err := copyOne(fs, src, *bs, sp.Context())
		sp.End()
		if err != nil {
			fs.Unmount()
			fatal(err)
		}
		total += n
	}
	if err := fs.Unmount(); err != nil {
		fatal(err)
	}
	if err := trun.write(nil); err != nil {
		fatal(err)
	}
	el := time.Since(start).Seconds()
	st := fs.Stats()
	fmt.Printf("copied %d bytes in %.3fs (%.1f MB/s)\n", total, el, float64(total)/el/(1<<20))
	fmt.Printf("app writes: %d, backend writes: %d (aggregation %.1fx), pool waits: %d\n",
		st.Writes, st.BackendWrites, st.AggregationRatio(), st.PoolWaits)
	if cs := st.Codec(); cs.Frames > 0 {
		fmt.Println(cs.Format())
	}
}

func copyOne(fs *crfs.FS, src string, bs int, ctx obs.SpanContext) (int64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := fs.Open(filepath.Base(src), crfs.WriteOnly|crfs.Create|crfs.Trunc)
	if err != nil {
		return 0, err
	}
	setSpanContext(out, ctx)
	buf := make([]byte, bs)
	var off int64
	for {
		n, err := in.Read(buf)
		if n > 0 {
			if _, werr := out.WriteAt(buf[:n], off); werr != nil {
				out.Close()
				return off, werr
			}
			off += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			out.Close()
			return off, err
		}
	}
	return off, out.Close()
}

// restoreAll copies each src out of a CRFS mount over its directory into
// dst as a plain file. Mounts are shared per source directory, so the
// per-mount stats aggregate all files restored from that directory.
func restoreAll(srcs []string, dst string, bs int, chunk, pool int64, threads, readAhead int, repair bool, trun *traceRun) error {
	mounts := make(map[string]*crfs.FS)
	defer func() {
		for _, fs := range mounts {
			fs.Unmount()
		}
	}()
	start := time.Now()
	var total int64
	for _, src := range srcs {
		dir := filepath.Dir(src)
		fs, ok := mounts[dir]
		if !ok {
			var err error
			fs, err = crfs.MountDir(dir, crfs.Options{
				ChunkSize: chunk, BufferPoolSize: pool, IOThreads: threads, ReadAhead: readAhead,
				RepairOnOpen: repair, Tracer: trun.tracer(),
			})
			if err != nil {
				return err
			}
			mounts[dir] = fs
		}
		sp := trun.span("crfscp.restore", src)
		n, err := restoreOne(fs, filepath.Base(src), filepath.Join(dst, filepath.Base(src)), bs, sp.Context())
		sp.End()
		if err != nil {
			return err
		}
		total += n
	}
	el := time.Since(start).Seconds()
	fmt.Printf("restored %d bytes in %.3fs (%.1f MB/s)\n", total, el, float64(total)/el/(1<<20))
	for dir, fs := range mounts {
		if err := fs.Unmount(); err != nil {
			delete(mounts, dir)
			return err
		}
		delete(mounts, dir)
		st := fs.Stats()
		fmt.Printf("%s: reads=%d bytes=%d, %s\n", dir, st.Reads, st.BytesRead, st.Prefetch().Format())
		if rc := st.Recovery(); rc.Salvaged > 0 || rc.Repaired > 0 {
			fmt.Printf("%s: %s\n", dir, rc.Format())
		}
	}
	return trun.write(nil)
}

// restoreOne streams one file out of the mount into a plain destination
// file with sequential bs-sized reads — the access pattern the restart
// read pipeline accelerates.
func restoreOne(fs *crfs.FS, name, dst string, bs int, ctx obs.SpanContext) (int64, error) {
	in, err := fs.Open(name, crfs.ReadOnly)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	setSpanContext(in, ctx)
	out, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, bs)
	var off int64
	for {
		n, rerr := in.ReadAt(buf, off)
		if n > 0 {
			if _, werr := out.Write(buf[:n]); werr != nil {
				out.Close()
				return off, werr
			}
			off += int64(n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			out.Close()
			return off, rerr
		}
	}
	return off, out.Close()
}

// serverMode moves files over the wire to/from a crfsd daemon on one
// persistent protocol-v2 connection.
func serverMode(addr string, restore bool, redials int, args []string, trun *traceRun) error {
	if len(args) < 1 || (restore && len(args) < 2) {
		fmt.Fprintln(os.Stderr, "usage: crfscp -server host:port SRC...")
		fmt.Fprintln(os.Stderr, "       crfscp -server host:port -restore NAME... DSTDIR")
		os.Exit(2)
	}
	c, err := client.Dial(addr, client.Config{Redials: redials})
	if err != nil {
		return err
	}
	defer c.Close()
	start := time.Now()
	var total int64
	if restore {
		dst := args[len(args)-1]
		if err := os.MkdirAll(dst, 0o755); err != nil {
			return err
		}
		for _, name := range args[:len(args)-1] {
			out, err := os.Create(filepath.Join(dst, filepath.Base(name)))
			if err != nil {
				return err
			}
			sp := trun.span("crfscp.get", name)
			n, err := c.GetTraced(name, out, sp.Context())
			sp.End()
			if cerr := out.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("GET %s: %w", name, err)
			}
			total += n
		}
		el := time.Since(start).Seconds()
		fmt.Printf("fetched %d bytes in %.3fs (%.1f MB/s)\n", total, el, float64(total)/el/(1<<20))
		return trun.write(clientDump(c))
	}
	for _, src := range args {
		in, err := os.Open(src)
		if err != nil {
			return err
		}
		info, err := in.Stat()
		if err != nil {
			in.Close()
			return err
		}
		sp := trun.span("crfscp.put", src)
		err = c.PutTraced(filepath.Base(src), in, info.Size(), sp.Context())
		sp.End()
		in.Close()
		if err != nil {
			return fmt.Errorf("PUT %s: %w", src, err)
		}
		total += info.Size()
	}
	el := time.Since(start).Seconds()
	fmt.Printf("uploaded %d bytes in %.3fs (%.1f MB/s)\n", total, el, float64(total)/el/(1<<20))
	if line, err := c.Stat(); err == nil {
		fmt.Println(line)
	}
	return trun.write(clientDump(c))
}

// clientDump adapts a single-daemon client to the traceRun dump shape;
// a daemon without trace support contributes nothing.
func clientDump(c *client.Client) func(obs.TraceID) []obs.SpanRecord {
	return func(id obs.TraceID) []obs.SpanRecord {
		recs, err := c.TraceDump(id)
		if err != nil {
			return nil
		}
		return recs
	}
}

// stripedMode moves checkpoints through the striped multi-node store:
// chunks fan out to (and stream back from) every listed daemon in
// parallel, with replication and manifest fingerprints carrying the
// durability story.
func stripedMode(addrs []string, restore, scrub bool, cfg stripe.Config, redials int, args []string, trun *traceRun) error {
	if !scrub && (len(args) < 1 || (restore && len(args) < 2)) {
		fmt.Fprintln(os.Stderr, "usage: crfscp -nodes a:9000,b:9000,... SRC...")
		fmt.Fprintln(os.Stderr, "       crfscp -nodes a:9000,b:9000,... -restore NAME... DSTDIR")
		fmt.Fprintln(os.Stderr, "       crfscp -nodes a:9000,b:9000,... -scrub")
		os.Exit(2)
	}
	nodes := make([]stripe.Node, 0, len(addrs))
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		n, err := stripe.DialNode(addr, redials)
		if err != nil {
			// An unreachable node must not fail the whole operation:
			// surviving replicas are exactly what replication buys.
			// New puts place only on the nodes that answered.
			fmt.Fprintf(os.Stderr, "crfscp: node %s unreachable, continuing without it: %v\n", addr, err)
			continue
		}
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return fmt.Errorf("crfscp: no stripe nodes reachable")
	}
	s := stripe.New(cfg, nodes...)

	start := time.Now()
	if scrub {
		rep, err := s.Scrub()
		fmt.Printf("scrub over %d nodes in %.3fs: %s\n", len(nodes), time.Since(start).Seconds(), rep)
		if err == nil {
			err = trun.write(s.TraceDumps)
		}
		return err
	}
	var total int64
	if restore {
		dst := args[len(args)-1]
		if err := os.MkdirAll(dst, 0o755); err != nil {
			return err
		}
		for _, name := range args[:len(args)-1] {
			out, err := os.Create(filepath.Join(dst, filepath.Base(name)))
			if err != nil {
				return err
			}
			sp := trun.span("crfscp.get", name)
			n, err := s.GetTraced(name, out, sp.Context())
			sp.End()
			if cerr := out.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("striped GET %s: %w", name, err)
			}
			total += n
		}
		el := time.Since(start).Seconds()
		st := s.Stats()
		fmt.Printf("restored %d bytes from %d nodes in %.3fs (%.1f MB/s)\n", total, len(nodes), el, float64(total)/el/(1<<20))
		fmt.Printf("chunks=%d fallbacks=%d checksum_failures=%d\n", st.ChunksGot, st.ReplicaFallbacks, st.ChecksumFailed)
		return trun.write(s.TraceDumps)
	}
	for _, src := range args {
		in, err := os.Open(src)
		if err != nil {
			return err
		}
		info, err := in.Stat()
		if err != nil {
			in.Close()
			return err
		}
		sp := trun.span("crfscp.put", src)
		err = s.PutTraced(filepath.Base(src), in, info.Size(), sp.Context())
		sp.End()
		in.Close()
		if err != nil {
			return fmt.Errorf("striped PUT %s: %w", src, err)
		}
		total += info.Size()
	}
	el := time.Since(start).Seconds()
	st := s.Stats()
	fmt.Printf("striped %d bytes to %d nodes in %.3fs (%.1f MB/s)\n", total, len(nodes), el, float64(total)/el/(1<<20))
	fmt.Printf("chunk replicas=%d replica bytes=%d\n", st.ChunksPut, st.BytesPut)
	return trun.write(s.TraceDumps)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crfscp:", err)
	os.Exit(1)
}
