module crfs

go 1.22
