// Package crfs is the public API of the CRFS library — a reimplementation
// of the Checkpoint/Restart Filesystem of Ouyang, Rajachandrasekar,
// Besseron, Wang, Huang and Panda ("CRFS: A Lightweight User-Level
// Filesystem for Generic Checkpoint/Restart", ICPP 2011).
//
// CRFS is a stackable, write-aggregating filesystem layer: it intercepts
// writes, coalesces them into large fixed-size chunks drawn from a bounded
// buffer pool, and writes the chunks to the backing filesystem
// asynchronously from a small pool of IO worker goroutines that throttle
// backend concurrency. Close and Sync block until every outstanding chunk
// of the file has landed, so a file written via CRFS can be read directly
// from the backend afterwards — no layout is changed (with the default raw
// codec). Reads are read-your-writes without stalling the pipeline: data
// still buffered or in flight is served from the chunk buffers themselves
// (the buffered-read-through overlay), so mixed read/write workloads and
// restart-while-checkpointing never collapse the asynchronous write path
// the way a drain-before-read would.
//
// Optionally, a chunk codec (Options.Codec) compresses each chunk on the
// IO workers before the backend write, trading CPU on the otherwise
// IO-bound checkpoint path for backend IO volume. With a non-raw codec
// each file becomes a self-describing container of independently encoded
// frames; reads through any CRFS mount decode such containers
// transparently, and incompressible chunks fall back to raw frames. The
// default raw codec keeps the seed passthrough behavior byte-identical.
//
// Restart — the sequential read-back of a checkpoint image — has its own
// pipeline (Options.ReadAhead): a handle detected reading sequentially
// triggers prefetch of the next chunks or frames, fetched and decoded in
// parallel on the same IO workers, so restart throughput is no longer
// bounded by single-stream backend latency. Prefetched bytes are
// invalidated by writes, truncates, and renames, and buffered writes
// always shadow them, so read results never change — only their cost.
//
// Crash consistency is a stated contract: everything acknowledged by
// Sync or Close survives a crash byte-identically, overwritten data is
// never resurrected, and unsynced tails only ever shorten a file. A
// frame container torn by a crash mid-append is salvaged at open — reads
// serve the longest intact frame prefix instead of failing the file —
// and Options.RepairOnOpen additionally truncates the backend file to
// that prefix. Stats.Recovery() reports salvage activity, and backend
// write failures surface exactly once, at the next Sync or Close. The
// contract is enforced by a crash-point enumeration harness
// (internal/crashfs, `crfsbench -crash`) that replays a power cut at
// every byte boundary of a workload's backend writes.
//
// Containers are log-structured and last-writer-wins, so rewrite-heavy
// checkpoint workloads accumulate dead frames without bound. Online
// compaction (Options.Compaction, FS.Compact) rewrites a container to
// its minimal equivalent — byte-identical reads, dead bytes reclaimed —
// via a crash-safe temp-write + rename replace, checked against the
// policy after every Sync and Close. FS.Scrub re-verifies every frame of
// every container on the mount, fanning the per-frame decode checks
// across the IO workers at the lowest priority; the crfsck command runs
// both engines offline over a backing directory.
//
// Quick start:
//
//	backend, _ := crfs.DirBackend("/mnt/scratch")
//	fs, _ := crfs.Mount(backend, crfs.Options{})
//	defer fs.Unmount()
//	f, _ := fs.Open("ckpt/rank0.img", crfs.WriteOnly|crfs.Create)
//	f.WriteAt(payload, 0) // returns after the copy; IO is asynchronous
//	f.Close()             // blocks until all chunks reached the backend
//
// The repository also contains, under internal/, the full simulation
// substrate reproducing the paper's evaluation: a deterministic
// discrete-event cluster with ext3/NFS/Lustre models, BLCR checkpoint
// streams, and the three MPI stacks' coordinated checkpoint protocol. See
// DESIGN.md and EXPERIMENTS.md.
package crfs

import (
	"crfs/internal/codec"
	"crfs/internal/compact"
	"crfs/internal/core"
	"crfs/internal/memfs"
	"crfs/internal/osfs"
	"crfs/internal/vfs"
)

// Core types, re-exported from the implementation packages.
type (
	// FS is a CRFS mount; it implements Filesystem.
	FS = core.FS
	// Options configures a mount; the zero value selects the paper's
	// defaults (16 MB pool, 4 MB chunks, 4 IO threads).
	Options = core.Options
	// Stats is a snapshot of mount activity counters.
	Stats = core.Stats
	// Codec encodes and decodes aggregation chunks (Options.Codec).
	Codec = codec.Codec
	// Filesystem is the interface CRFS stacks over and exposes upward.
	Filesystem = vfs.FS
	// File is an open file handle.
	File = vfs.File
	// FileInfo describes a file.
	FileInfo = vfs.FileInfo
	// DirEntry is a directory listing entry.
	DirEntry = vfs.DirEntry
	// OpenFlag selects open modes.
	OpenFlag = vfs.OpenFlag
	// CompactionPolicy configures online container compaction
	// (Options.Compaction): dead-byte thresholds checked after Sync and
	// Close, plus an optional background re-check interval.
	CompactionPolicy = core.CompactionPolicy
	// ScrubOptions configures FS.Scrub, the parallel container verifier.
	ScrubOptions = core.ScrubOptions
	// ScrubReport is a scrub pass's findings (per-frame verification
	// totals and the containers with defects).
	ScrubReport = compact.Report
)

// Open flags, re-exported for call-site convenience.
const (
	ReadOnly  = vfs.ReadOnly
	WriteOnly = vfs.WriteOnly
	ReadWrite = vfs.ReadWrite
	Create    = vfs.Create
	Excl      = vfs.Excl
	Trunc     = vfs.Trunc
)

// Defaults chosen by the paper's evaluation (§V-B).
const (
	DefaultBufferPoolSize = core.DefaultBufferPoolSize
	DefaultChunkSize      = core.DefaultChunkSize
	DefaultIOThreads      = core.DefaultIOThreads
)

// Frame format versions for Options.FrameVersion. Version 2 headers
// carry a CRC32-C of each frame's uncompressed payload, verified on
// every decode path; version 1 is the legacy checksum-less layout.
// Readers always accept both.
const (
	FrameVersion1 = codec.Version1
	FrameVersion2 = codec.Version2
	FrameVersion  = codec.Version // written by default
)

// RawCodec returns the passthrough chunk codec (the default): backend
// output is byte-identical to a codec-less mount.
func RawCodec() Codec { return codec.Raw() }

// DeflateCodec returns the DEFLATE chunk codec: files become frame
// containers whose chunks are compressed in parallel on the IO workers.
func DeflateCodec() Codec { return codec.Deflate() }

// LookupCodec resolves a chunk codec by name ("raw", "deflate").
func LookupCodec(name string) (Codec, error) { return codec.Lookup(name) }

// CodecNames lists the registered chunk codec names.
func CodecNames() []string { return codec.Names() }

// Common sentinel errors.
var (
	ErrNotExist = vfs.ErrNotExist
	ErrExist    = vfs.ErrExist
	ErrClosed   = vfs.ErrClosed
	ErrInvalid  = vfs.ErrInvalid
	ErrReadOnly = vfs.ErrReadOnly
	// ErrCorrupt reports a malformed or inconsistent container frame;
	// ErrChecksum is its sub-error for a v2 payload that decoded but
	// failed its CRC32-C (errors.Is(err, ErrCorrupt) holds for both).
	ErrCorrupt  = codec.ErrCorrupt
	ErrChecksum = codec.ErrChecksum
)

// Mount stacks CRFS over a backend filesystem.
func Mount(backend Filesystem, opts Options) (*FS, error) {
	return core.Mount(backend, opts)
}

// MountDir mounts CRFS over a host directory (the common deployment: the
// directory lives on ext3/NFS/Lustre and CRFS aggregates writes into it).
func MountDir(dir string, opts Options) (*FS, error) {
	backend, err := osfs.New(dir)
	if err != nil {
		return nil, err
	}
	return core.Mount(backend, opts)
}

// DirBackend exposes a host directory as a backend Filesystem.
func DirBackend(dir string) (Filesystem, error) { return osfs.New(dir) }

// MemBackend returns an in-memory backend Filesystem, useful for tests
// and benchmarks.
func MemBackend() Filesystem { return memfs.New() }

// ReadFile reads a whole file from any Filesystem.
func ReadFile(fsys Filesystem, name string) ([]byte, error) { return vfs.ReadFile(fsys, name) }

// WriteFile writes data to a file on any Filesystem, creating or
// truncating it.
func WriteFile(fsys Filesystem, name string, data []byte) error {
	return vfs.WriteFile(fsys, name, data)
}
