// Restart: the paper's §V-F — CRFS does not change file layout, so a
// checkpoint written through CRFS restarts directly from the backing
// filesystem (no CRFS mount needed), and reading through CRFS adds no
// translation either.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	crfs "crfs"
)

func main() {
	dir, err := os.MkdirTemp("", "crfs-restart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- checkpoint phase: write the image through CRFS ---
	fs, err := crfs.MountDir(dir, crfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	image := make([]byte, 8<<20)
	for i := range image {
		image[i] = byte(i * 2654435761)
	}
	f, err := fs.Open("rank0.img", crfs.WriteOnly|crfs.Create)
	if err != nil {
		log.Fatal(err)
	}
	// BLCR-style: header + region writes.
	var off int64
	for off < int64(len(image)) {
		n := int64(12 << 10)
		if off+n > int64(len(image)) {
			n = int64(len(image)) - off
		}
		if _, err := f.WriteAt(image[off:off+n], off); err != nil {
			log.Fatal(err)
		}
		off += n
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint written through CRFS and drained")

	// --- restart phase 1: read directly from the backend, no CRFS ---
	direct, err := os.ReadFile(dir + "/rank0.img")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(direct, image) {
		log.Fatal("restart from backend: image corrupted")
	}
	fmt.Println("restart directly from backing filesystem: image intact (no CRFS mount needed)")

	// --- restart phase 2: read through a fresh CRFS mount ---
	fs2, err := crfs.MountDir(dir, crfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer fs2.Unmount()
	got, err := crfs.ReadFile(fs2, "rank0.img")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, image) {
		log.Fatal("restart through CRFS: image corrupted")
	}
	st := fs2.Stats()
	fmt.Printf("restart through CRFS: image intact, passthrough reads=%d, backend writes=%d\n",
		st.Reads, st.BackendWrites)
}
