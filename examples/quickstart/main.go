// Quickstart: mount CRFS over a temporary directory, write a checkpoint
// stream of many small/medium writes, and observe the aggregation: the
// backing filesystem sees only a handful of large chunk writes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	crfs "crfs"
)

func main() {
	dir, err := os.MkdirTemp("", "crfs-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Mount with the paper's defaults: 16 MB buffer pool of 4 MB chunks,
	// 4 IO worker goroutines.
	fs, err := crfs.MountDir(dir, crfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Unmount()

	f, err := fs.Open("rank0.img", crfs.WriteOnly|crfs.Create)
	if err != nil {
		log.Fatal(err)
	}

	// A BLCR-like stream: tiny headers, page-sized region dumps, a few
	// large regions — written sequentially.
	rng := rand.New(rand.NewSource(1))
	var off int64
	writes := 0
	for off < 32<<20 {
		var n int
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // ~half the calls are tiny header records
			n = 16 + rng.Intn(48)
		case 5, 6, 7, 8: // page-table-sized region dumps
			n = 4096 + rng.Intn(12288)
		default: // occasionally, a large region
			n = 1 << 20
		}
		buf := make([]byte, n)
		if _, err := f.WriteAt(buf, off); err != nil {
			log.Fatal(err)
		}
		off += int64(n)
		writes++
	}
	// close() blocks until every chunk reached the backing directory
	// ("no pending data in CRFS").
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	st := fs.Stats()
	fmt.Printf("wrote %d bytes in %d application writes\n", st.BytesWritten, st.Writes)
	fmt.Printf("backend saw %d writes of ~%d KB each (aggregation ratio %.0fx)\n",
		st.BackendWrites, st.BackendBytes/st.BackendWrites>>10, st.AggregationRatio())
	fmt.Printf("chunks flushed: %d, pool waits: %d\n", st.ChunksFlushed, st.PoolWaits)

	// The file is readable directly from the backing directory — CRFS
	// never changes layout.
	info, err := os.Stat(dir + "/rank0.img")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backing file size: %d bytes (== %d written)\n", info.Size(), off)
}
