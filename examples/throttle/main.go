// Throttle: the paper's §V-B finding that a small IO thread pool (4)
// balances backend concurrency — too few threads leave the backend idle,
// too many recreate the contention CRFS exists to remove.
//
// The sweep runs the Lustre class-C checkpoint in the simulator at several
// IO thread counts, and then demonstrates the same knob on the real
// library against a slow in-memory backend.
package main

import (
	"fmt"
	"time"

	crfs "crfs"
	"crfs/internal/cluster"
	"crfs/internal/memfs"
	"crfs/internal/mpi"
	"crfs/internal/simcrfs"
	"crfs/internal/workload"
)

func main() {
	fmt.Println("simulated: LU.C.128 over Lustre through CRFS, sweeping IO threads")
	for _, threads := range []int{1, 2, 4, 8, 16} {
		res := cluster.RunCheckpoint(cluster.Config{
			Nodes: 16, ProcsPerNode: 8, Backend: cluster.Lustre, UseCRFS: true,
			CRFS:  simcrfs.Options{IOThreads: threads},
			Stack: mpi.MVAPICH2, Class: workload.ClassC, Seed: 7,
		})
		fmt.Printf("  IO threads=%-3d avg checkpoint time=%.2fs\n", threads, res.AvgTime)
	}

	fmt.Println("\nreal library: 64 MB through CRFS onto a slow backend")
	for _, threads := range []int{1, 4} {
		backend := memfs.New(memfs.WithWriteDelay(2 * time.Millisecond))
		fs, err := crfs.Mount(backend, crfs.Options{IOThreads: threads})
		if err != nil {
			panic(err)
		}
		f, err := fs.Open("img", crfs.WriteOnly|crfs.Create)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		buf := make([]byte, 64<<10)
		for off := int64(0); off < 64<<20; off += int64(len(buf)) {
			if _, err := f.WriteAt(buf, off); err != nil {
				panic(err)
			}
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		fs.Unmount()
		fmt.Printf("  IO threads=%-3d wall time=%.3fs\n", threads, time.Since(start).Seconds())
	}
}
