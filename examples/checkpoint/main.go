// Checkpoint: reproduce the paper's headline experiment in miniature — a
// 16-node MPI job checkpointing LU class C through BLCR onto each of the
// three backing filesystems, natively and through CRFS (Fig. 6).
//
// Everything runs in the deterministic discrete-event simulation, so the
// program completes in seconds while modelling minutes of cluster IO.
package main

import (
	"fmt"

	"crfs/internal/cluster"
	"crfs/internal/mpi"
	"crfs/internal/workload"
)

func main() {
	fmt.Println("LU class C, 128 processes on 16 nodes, MVAPICH2, avg write+close time per process")
	fmt.Printf("%-8s %12s %12s %10s\n", "backend", "native", "with CRFS", "speedup")
	for _, backend := range cluster.Backends() {
		var times [2]float64
		for i, useCRFS := range []bool{false, true} {
			res := cluster.RunCheckpoint(cluster.Config{
				Nodes: 16, ProcsPerNode: 8,
				Backend: backend, UseCRFS: useCRFS,
				Stack: mpi.MVAPICH2, Class: workload.ClassC, Seed: 7,
			})
			times[i] = res.AvgTime
		}
		fmt.Printf("%-8s %11.2fs %11.2fs %9.1fx\n", backend, times[0], times[1], times[0]/times[1])
	}
	fmt.Println("\nCheckpoint sizes (Table II model):")
	for _, stack := range mpi.Stacks() {
		img, _ := stack.ImageBytes(workload.ClassC, 128)
		tot, _ := stack.TotalCheckpointBytes(workload.ClassC, 128)
		fmt.Printf("  %-9s (%-3s): image %6.1f MB, total %8.1f MB\n",
			stack.Name, stack.Transport, float64(img)/(1<<20), float64(tot)/(1<<20))
	}
}
